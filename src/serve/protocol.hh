/**
 * @file
 * Wire protocol of mpress-serve: line-delimited JSON over a local
 * TCP socket.
 *
 * A client sends one JSON object per line; the daemon answers with
 * one JSON object per line carrying the request's "id" so responses
 * can be matched even when concurrent requests complete out of
 * order.  The grammar is deliberately small:
 *
 *   {"op":"ping"|"stats"|"plan"|"analyze"|"robustness"|"shutdown"
 *         |"stall",
 *    "id":"<echoed verbatim>",
 *    ... op-specific fields ...}
 *
 * plan / analyze / robustness describe one training job with the
 * same vocabulary as the mpress_cli flags (model preset, topology
 * preset, system, strategy, microbatch, mbPerMini, minibatches,
 * threads, deadlineMs, portfolio, analyticPrune, verifyMode) and the
 * same defaults, so a served request and the equivalent command line
 * are the same job — the byte-identical-plan contract in
 * tests/serve_test.cc depends on it.  robustness additionally takes
 * "scenarios": an inline fault-scenario array in the --robustness
 * file format.  stall ("ms": sleep duration) exists only for tests
 * and is rejected unless the server enables it.
 *
 * Every response is either
 *   {"id":...,"ok":true,"op":...,"result":{...}}        or
 *   {"id":...,"ok":false,"error":{"kind":...,"message":...}}
 * where kind is a stable enum name (parse-error, bad-request,
 * overloaded, unsupported, rejected-plan, internal) — malformed or
 * hostile input must produce a typed error, never a crash or a
 * silent disconnect.
 */

#ifndef MPRESS_SERVE_PROTOCOL_HH
#define MPRESS_SERVE_PROTOCOL_HH

#include <string>

#include "util/json.hh"

namespace mpress {
namespace serve {

/** Operations a request line can name. */
enum class RequestOp
{
    Ping,        ///< liveness probe, answered inline
    Stats,       ///< daemon counters + trial-cache occupancy
    Plan,        ///< plan one job, return plan text + throughput
    Analyze,     ///< plan one job, return the analysis certificate
    Robustness,  ///< plan, then replay across a scenario matrix
    Stall,       ///< test-only: hold a worker for "ms" milliseconds
    Shutdown,    ///< stop the daemon after answering
};

/** Returns the wire name of @p op ("ping", "plan", ...). */
const char *requestOpName(RequestOp op);

/** Typed failure classes of the protocol. */
enum class ErrorKind
{
    None,
    ParseError,    ///< request line is not acceptable JSON
    BadRequest,    ///< unknown op / name, field out of range
    Overloaded,    ///< admission queue full, retry later
    Unsupported,   ///< op disabled on this server (stall)
    RejectedPlan,  ///< strict verification rejected the plan
    Internal,      ///< unexpected server-side failure
};

/** Returns the stable wire name of @p kind ("parse-error", ...). */
const char *errorKindName(ErrorKind kind);

/** One training job as described by a plan/analyze/robustness
 *  request.  Defaults mirror the mpress_cli flag defaults. */
struct JobSpec
{
    std::string model = "bert-0.64b";
    std::string topology = "dgx1";

    /** Multi-node cluster selector; empty = use @ref topology.  On
     *  the wire "cluster" is either a string (a preset name such as
     *  "2x-dgx2") or an inline spec object, which is re-rendered to
     *  canonical text here so the server can push it through the
     *  strict cluster-spec parser and verifyClusterSpec. */
    std::string cluster;
    std::string system = "pipedream";
    std::string strategy = "mpress";
    std::string verifyMode = "permissive";
    int microbatch = 12;
    int mbPerMini = 8;
    int minibatches = 2;
    int threads = 1;
    bool portfolio = false;
    bool analyticPrune = false;
    double deadlineMs = 0.0;
};

/** One decoded request line. */
struct Request
{
    RequestOp op = RequestOp::Ping;
    std::string id;
    JobSpec job;

    /** Robustness only: the request's "scenarios" array re-rendered
     *  as a {"scenarios":[...]} document for
     *  fault::parseScenarioMatrix. */
    std::string scenariosText;

    /** Stall only: how long to hold a worker. */
    double stallMs = 0.0;
};

/** Result of parseRequest(). */
struct ParsedRequest
{
    bool ok = false;
    Request request;

    /** Set when !ok. */
    ErrorKind errorKind = ErrorKind::None;
    std::string error;

    /** Best-effort "id" echo: recovered even from requests rejected
     *  for a bad field, so the client can still match the error. */
    std::string id;
};

/**
 * Decode and validate one request line under @p limits.  Every
 * rejection carries a typed kind: hostile input (deep nesting,
 * oversized lines, type confusion, out-of-range numbers) must map to
 * parse-error / bad-request, never to a crash — this is the
 * network-facing hardening boundary of the daemon.
 */
ParsedRequest parseRequest(const std::string &line,
                           const util::JsonLimits &limits = {});

/** Render the error response line (no trailing newline). */
std::string errorResponse(const std::string &id, ErrorKind kind,
                          const std::string &message);

/** Render the success response prefix + @p resultBody (a complete
 *  JSON object text) as a response line (no trailing newline). */
std::string okResponse(const std::string &id, RequestOp op,
                       const std::string &resultBody);

} // namespace serve
} // namespace mpress

#endif // MPRESS_SERVE_PROTOCOL_HH
