/**
 * @file
 * Static verification of execution plans (a linter plus race/deadlock
 * detector for `(Model, Partition, Topology, Schedule, CompactionPlan)`
 * tuples).
 *
 * The planner emits a CompactionPlan and a pipeline Schedule that the
 * executor replays blindly; a malformed tuple — a D2D grant that
 * overcommits an importer's spare memory, a backward ordered before
 * the forward whose stash it consumes, a cyclic task DAG — otherwise
 * surfaces only as a crash or silently-wrong simulated throughput deep
 * inside the event loop.  verifyPlan() proves the cheap-to-check
 * invariants *before* execution and returns a structured diagnostic
 * list instead of panicking, so callers (planner refinement, session
 * plan loading, the mpress_verify CLI) can reject bad inputs with an
 * actionable report.
 *
 * Rule catalog (stable string ids via ruleName()):
 *
 *   Schedule structure
 *     sched-shape         counts/ids/order lists internally consistent
 *     sched-missing-task  every (stage, microbatch) has fwd and bwd
 *     sched-missing-dep   fwd/bwd carry their cross-stage dependency
 *     sched-dep-range     dependency ids reference existing tasks
 *     sched-cycle         task DAG + per-stage orders are acyclic
 *     sched-order-hazard  a backward ordered before its forward
 *     sched-fabric-path   cross-stage edge with no direct NVLink path
 *   Device mapping
 *     map-shape           stageToGpu sized to the stage count
 *     map-device-range    mapped GPU indices exist in the topology
 *     map-duplicate       two stages share one GPU (interleaving)
 *   Capacity
 *     cap-stage-overflow  projected stage peak exceeds GPU capacity
 *     cap-host-overflow   projected pinned-host demand exceeds DRAM
 *     cap-proved-overflow analyzer lower bound exceeds capacity: the
 *                         plan provably OOMs (Options::analysis)
 *     cap-unproven        analyzer upper bound exceeds capacity: the
 *                         plan may OOM (Options::analysis)
 *   D2D spare grants
 *     d2d-self-grant      a GPU lends spare memory to itself
 *     d2d-grant-range     grant names an unknown GPU / negative bytes
 *     d2d-unreachable     importer not NVLink-reachable from exporter
 *     d2d-overcommit      grants exceed the importer's projected spare
 *     d2d-grant-cycle     exporter/importer grant cycle
 *     d2d-orphan-grant    grants on a GPU with no D2D-swapped class
 *     d2d-no-grant        D2D-swapped class with no grant to draw on
 *   Swap hazards
 *     swap-unknown-tensor plan names a tensor outside the partition
 *     swap-empty-class    technique assigned to a zero-byte stash
 *     swap-interval-tight PCIe round trips exceed the hiding budget
 *     d2d-nic-infeasible  cross-node D2D stripes exceed the NIC
 *                         hiding budget (the grant ledger assumes
 *                         intra-node bandwidth across a NIC link)
 *   Config shape
 *     cfg-shape           offload vectors not sized to stage count
 *     cfg-stash-sync      stash offload on a non-stashing schedule
 *   Fault schedules (verifyScenario)
 *     fault-time-range    negative start or empty/inverted window
 *     fault-resource-range unknown GPU / link ids for the event kind
 *     fault-value-range   non-positive factor, probability outside
 *                         [0,1], non-positive pressure bytes
 *     fault-overlap       two windows of one kind overlap on one
 *                         resource
 *   Cluster specs (verifyClusterSpec)
 *     cluster-node-range  node count outside [1, 64] or unknown
 *                         node preset
 *     cluster-link-range  NIC count/bandwidth/latency outside sane
 *                         ranges or unknown NIC preset
 *     cluster-duplicate-id two nodes share one display id
 *
 * Severities: structural rules are errors (the executor would abort,
 * deadlock, or misaccount); heuristic/performance rules are warnings,
 * promoted to errors by Options::strict.
 */

#ifndef MPRESS_VERIFY_VERIFY_HH
#define MPRESS_VERIFY_VERIFY_HH

#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "compaction/plan.hh"
#include "fault/scenario.hh"
#include "hw/topology.hh"
#include "memory/liveness.hh"
#include "model/model.hh"
#include "partition/partition.hh"
#include "pipeline/schedule.hh"

namespace mpress {
namespace verify {

using util::Bytes;

/** Diagnostic severity; errors make Report::ok() false. */
enum class Severity
{
    Warning,
    Error,
};

/** Returns "warning" or "error". */
const char *severityName(Severity s);

/** Every check the verifier performs (see file header for the
 *  catalog).  ruleName() yields the stable kebab-case id. */
enum class Rule
{
    SchedShape,
    SchedMissingTask,
    SchedMissingDep,
    SchedDepRange,
    SchedCycle,
    SchedOrderHazard,
    SchedFabricPath,
    MapShape,
    MapDeviceRange,
    MapDuplicate,
    CapStageOverflow,
    CapHostOverflow,
    CapProvedOverflow,
    CapUnproven,
    D2dSelfGrant,
    D2dGrantRange,
    D2dUnreachable,
    D2dOvercommit,
    D2dGrantCycle,
    D2dOrphanGrant,
    D2dNoGrant,
    SwapUnknownTensor,
    SwapEmptyClass,
    SwapIntervalTight,
    D2dNicInfeasible,
    CfgShape,
    CfgStashSync,
    FaultTimeRange,
    FaultResourceRange,
    FaultValueRange,
    FaultOverlap,
    ClusterNodeRange,
    ClusterLinkRange,
    ClusterDuplicateId,
};

/** Stable string id of @p rule, e.g. "sched-cycle". */
const char *ruleName(Rule rule);

/** Built-in severity of @p rule (before strict promotion). */
Severity defaultSeverity(Rule rule);

/**
 * One finding: what went wrong, where, and how to fix it.
 *
 * Location fields are -1 / {-1, -1} when not applicable.
 */
struct Diagnostic
{
    Severity severity = Severity::Error;
    Rule rule = Rule::SchedShape;
    int stage = -1;                     ///< offending pipeline stage
    int gpu = -1;                       ///< offending GPU
    int task = -1;                      ///< offending schedule task id
    memory::TensorRef tensor{-1, -1};   ///< offending tensor class
    std::string message;                ///< what is wrong
    std::string hint;                   ///< how to fix it
};

/** Verifier tunables. */
struct Options
{
    /** Capacity divisor matching ExecutorConfig::memOverheadFactor:
     *  usable capacity = HBM capacity / factor. */
    double memOverheadFactor = 1.10;

    /** Promote heuristic warnings to errors (verify-on-load in
     *  strict sessions). */
    bool strict = false;

    /** Cap on reported findings per rule; further instances are
     *  counted but suppressed (0 = unlimited). */
    int maxDiagsPerRule = 16;

    /** Run the static plan analyzer (src/analysis/) and judge its
     *  certificate: cap-proved-overflow when the peak-memory lower
     *  bound alone exceeds capacity (the plan provably OOMs),
     *  cap-unproven when only the upper bound does.  Off by default —
     *  the interval bounds are deliberately conservative and most
     *  workable compaction plans sit between the two. */
    bool analysis = false;
};

/**
 * The result of a verification pass: the diagnostic list plus
 * rendering and query helpers.
 */
class Report
{
  public:
    /** Append @p diag, honoring the per-rule suppression cap. */
    void add(Diagnostic diag);

    const std::vector<Diagnostic> &diagnostics() const
    {
        return _diags;
    }

    int errorCount() const;
    int warningCount() const;

    /** True when no error-severity diagnostics were recorded. */
    bool ok() const { return errorCount() == 0; }

    /** True when nothing at all was flagged. */
    bool clean() const { return _diags.empty() && _suppressed == 0; }

    /** True if any diagnostic (of either severity) names @p rule. */
    bool hasRule(Rule rule) const;

    /** First diagnostic naming @p rule; nullptr if absent. */
    const Diagnostic *findRule(Rule rule) const;

    /** Findings dropped by the per-rule cap. */
    int suppressedCount() const { return _suppressed; }

    /** Render the findings as an aligned text table. */
    std::string render() const;

    /** One-line summary, e.g. "2 errors, 1 warning". */
    std::string summary() const;

    /** Used by verifyPlan() to honor Options::maxDiagsPerRule. */
    void setPerRuleCap(int cap) { _perRuleCap = cap; }

  private:
    std::vector<Diagnostic> _diags;
    std::vector<int> _perRuleCount;
    int _perRuleCap = 0;
    int _suppressed = 0;
};

/**
 * Verify the structural invariants of @p sched alone (shape, task
 * completeness, dependency sanity, acyclicity, intra-stage ordering
 * hazards).  Never panics on malformed input — every violation
 * becomes a diagnostic.
 */
Report verifySchedule(const pipeline::Schedule &sched);

/**
 * Verify a complete execution tuple before running it.
 *
 * Checks everything verifySchedule() checks, then the device mapping
 * against @p topo, a symbolic capacity replay of @p plan against the
 * per-GPU budget, D2D spare-grant soundness, swap hazards, and config
 * shape.  Analyses that depend on broken structure (e.g. capacity on
 * an inconsistent mapping) are skipped rather than run on garbage.
 */
Report verifyPlan(const hw::Topology &topo,
                  const model::TransformerModel &mdl,
                  const partition::Partition &part,
                  const pipeline::Schedule &sched,
                  const compaction::CompactionPlan &plan,
                  const Options &opts = {});

/**
 * Verify a fault scenario against @p topo before injecting it:
 * window sanity (fault-time-range), endpoint existence for the event
 * kind (fault-resource-range), value ranges (fault-value-range), and
 * same-kind window overlap on one resource (fault-overlap).  The
 * executor replays scenarios blindly — a malformed schedule would
 * otherwise surface as a panic or silently-wrong degraded throughput.
 */
Report verifyScenario(const hw::Topology &topo,
                      const fault::Scenario &scenario,
                      const Options &opts = {});

/**
 * Verify a cluster spec before building a topology from it: node
 * count and preset existence (cluster-node-range), NIC count /
 * bandwidth / latency ranges and preset existence
 * (cluster-link-range), and display-id uniqueness
 * (cluster-duplicate-id).  buildCluster() panics on malformed specs,
 * so every untrusted spec (CLI --cluster files, mpress-serve job
 * fields) must pass through here first.
 */
Report verifyClusterSpec(const cluster::ClusterSpec &spec,
                         const Options &opts = {});

} // namespace verify
} // namespace mpress

#endif // MPRESS_VERIFY_VERIFY_HH
