#include "verify/verify.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "analysis/analyzer.hh"
#include "compaction/striping.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace mpress {
namespace verify {

using compaction::CompactionPlan;
using compaction::Kind;
using compaction::SpareGrant;
using memory::TensorRef;
using pipeline::Schedule;
using pipeline::Task;
using pipeline::TaskKind;
using util::strformat;

const char *
severityName(Severity s)
{
    return s == Severity::Error ? "error" : "warning";
}

const char *
ruleName(Rule rule)
{
    switch (rule) {
      case Rule::SchedShape:
        return "sched-shape";
      case Rule::SchedMissingTask:
        return "sched-missing-task";
      case Rule::SchedMissingDep:
        return "sched-missing-dep";
      case Rule::SchedDepRange:
        return "sched-dep-range";
      case Rule::SchedCycle:
        return "sched-cycle";
      case Rule::SchedOrderHazard:
        return "sched-order-hazard";
      case Rule::SchedFabricPath:
        return "sched-fabric-path";
      case Rule::MapShape:
        return "map-shape";
      case Rule::MapDeviceRange:
        return "map-device-range";
      case Rule::MapDuplicate:
        return "map-duplicate";
      case Rule::CapStageOverflow:
        return "cap-stage-overflow";
      case Rule::CapHostOverflow:
        return "cap-host-overflow";
      case Rule::CapProvedOverflow:
        return "cap-proved-overflow";
      case Rule::CapUnproven:
        return "cap-unproven";
      case Rule::D2dSelfGrant:
        return "d2d-self-grant";
      case Rule::D2dGrantRange:
        return "d2d-grant-range";
      case Rule::D2dUnreachable:
        return "d2d-unreachable";
      case Rule::D2dOvercommit:
        return "d2d-overcommit";
      case Rule::D2dGrantCycle:
        return "d2d-grant-cycle";
      case Rule::D2dOrphanGrant:
        return "d2d-orphan-grant";
      case Rule::D2dNoGrant:
        return "d2d-no-grant";
      case Rule::SwapUnknownTensor:
        return "swap-unknown-tensor";
      case Rule::SwapEmptyClass:
        return "swap-empty-class";
      case Rule::SwapIntervalTight:
        return "swap-interval-tight";
      case Rule::D2dNicInfeasible:
        return "d2d-nic-infeasible";
      case Rule::CfgShape:
        return "cfg-shape";
      case Rule::CfgStashSync:
        return "cfg-stash-sync";
      case Rule::FaultTimeRange:
        return "fault-time-range";
      case Rule::FaultResourceRange:
        return "fault-resource-range";
      case Rule::FaultValueRange:
        return "fault-value-range";
      case Rule::FaultOverlap:
        return "fault-overlap";
      case Rule::ClusterNodeRange:
        return "cluster-node-range";
      case Rule::ClusterLinkRange:
        return "cluster-link-range";
      case Rule::ClusterDuplicateId:
        return "cluster-duplicate-id";
    }
    return "?";
}

Severity
defaultSeverity(Rule rule)
{
    switch (rule) {
      // Heuristic / performance findings: the executor survives them
      // (graceful degradation or host bounce), but throughput or
      // memory headroom suffers.
      case Rule::SchedFabricPath:
      case Rule::MapDuplicate:
      case Rule::CapHostOverflow:
      case Rule::CapUnproven:
      case Rule::D2dOvercommit:
      case Rule::D2dGrantCycle:
      case Rule::D2dOrphanGrant:
      case Rule::D2dNoGrant:
      case Rule::SwapEmptyClass:
      case Rule::SwapIntervalTight:
      case Rule::D2dNicInfeasible:
      case Rule::CfgStashSync:
        return Severity::Warning;
      default:
        return Severity::Error;
    }
}

namespace {

constexpr std::size_t kNumRules =
    static_cast<std::size_t>(Rule::ClusterDuplicateId) + 1;

} // namespace

void
Report::add(Diagnostic diag)
{
    if (_perRuleCount.empty())
        _perRuleCount.assign(kNumRules, 0);
    auto r = static_cast<std::size_t>(diag.rule);
    if (_perRuleCap > 0 && _perRuleCount[r] >= _perRuleCap) {
        ++_suppressed;
        return;
    }
    ++_perRuleCount[r];
    _diags.push_back(std::move(diag));
}

int
Report::errorCount() const
{
    int n = 0;
    for (const auto &d : _diags)
        n += d.severity == Severity::Error;
    return n;
}

int
Report::warningCount() const
{
    int n = 0;
    for (const auto &d : _diags)
        n += d.severity == Severity::Warning;
    return n;
}

bool
Report::hasRule(Rule rule) const
{
    return findRule(rule) != nullptr;
}

const Diagnostic *
Report::findRule(Rule rule) const
{
    for (const auto &d : _diags) {
        if (d.rule == rule)
            return &d;
    }
    return nullptr;
}

std::string
Report::render() const
{
    util::TextTable table(
        {"severity", "rule", "where", "message", "hint"});
    for (const auto &d : _diags) {
        std::vector<std::string> where;
        if (d.stage >= 0)
            where.push_back(strformat("stage %d", d.stage));
        if (d.gpu >= 0)
            where.push_back(strformat("gpu %d", d.gpu));
        if (d.task >= 0)
            where.push_back(strformat("task %d", d.task));
        if (d.tensor.stage >= 0 && d.tensor.layer >= 0)
            where.push_back(strformat("tensor %d.%d", d.tensor.stage,
                                      d.tensor.layer));
        table.addRow({severityName(d.severity), ruleName(d.rule),
                      where.empty() ? "-" : util::join(where, ", "),
                      d.message, d.hint});
    }
    std::ostringstream os;
    table.print(os);
    if (_suppressed > 0)
        os << strformat("(%d further findings suppressed)\n",
                        _suppressed);
    return os.str();
}

std::string
Report::summary() const
{
    int errors = errorCount();
    int warnings = warningCount();
    if (errors == 0 && warnings == 0 && _suppressed == 0)
        return "clean";
    std::string s = strformat("%d error%s, %d warning%s", errors,
                              errors == 1 ? "" : "s", warnings,
                              warnings == 1 ? "" : "s");
    if (_suppressed > 0)
        s += strformat(" (+%d suppressed)", _suppressed);
    return s;
}

namespace {

/** Builds a diagnostic fluently, adding it to the report when it goes
 *  out of scope. */
class Finding
{
  public:
    Finding(Report &report, bool strict, Rule rule)
        : _report(report)
    {
        _diag.rule = rule;
        _diag.severity = defaultSeverity(rule);
        if (strict)
            _diag.severity = Severity::Error;
    }

    ~Finding() { _report.add(std::move(_diag)); }

    Finding(const Finding &) = delete;
    Finding &operator=(const Finding &) = delete;

    Finding &msg(std::string m)
    {
        _diag.message = std::move(m);
        return *this;
    }

    Finding &hint(std::string h)
    {
        _diag.hint = std::move(h);
        return *this;
    }

    Finding &stage(int s)
    {
        _diag.stage = s;
        return *this;
    }

    Finding &gpu(int g)
    {
        _diag.gpu = g;
        return *this;
    }

    Finding &task(int t)
    {
        _diag.task = t;
        return *this;
    }

    Finding &tensor(TensorRef ref)
    {
        _diag.tensor = ref;
        return *this;
    }

  private:
    Report &_report;
    Diagnostic _diag;
};

/**
 * Schedule structure pass.  Returns true when the schedule is sound
 * enough (ids in range, orders consistent) for the downstream
 * analyses to index into it safely.
 */
bool
checkScheduleStructure(const Schedule &sched, Report &report,
                       bool strict)
{
    auto finding = [&](Rule rule) {
        return Finding(report, strict, rule);
    };

    bool sane = true;
    const auto num_tasks = static_cast<int>(sched.tasks.size());

    if (sched.numStages <= 0 || sched.microbatchesPerMinibatch <= 0 ||
        sched.numMinibatches <= 0) {
        finding(Rule::SchedShape)
            .msg(strformat("degenerate shape: %d stages, %d mb/mini,"
                           " %d minibatches",
                           sched.numStages,
                           sched.microbatchesPerMinibatch,
                           sched.numMinibatches))
            .hint("all schedule dimensions must be positive");
        return false;
    }
    if (static_cast<int>(sched.perStageOrder.size()) !=
        sched.numStages) {
        finding(Rule::SchedShape)
            .msg(strformat("%zu per-stage order lists for %d stages",
                           sched.perStageOrder.size(),
                           sched.numStages))
            .hint("emit exactly one order list per stage");
        return false;
    }

    for (int id = 0; id < num_tasks; ++id) {
        const Task &t = sched.tasks[static_cast<std::size_t>(id)];
        if (t.id != id) {
            finding(Rule::SchedShape)
                .task(id)
                .msg(strformat("task at index %d carries id %d", id,
                               t.id))
                .hint("task ids must equal their index in tasks[]");
            sane = false;
        }
        if (t.stage < 0 || t.stage >= sched.numStages) {
            finding(Rule::SchedShape)
                .task(id)
                .msg(strformat("task %d names stage %d of %d", id,
                               t.stage, sched.numStages))
                .hint("stage indices must fit the pipeline depth");
            sane = false;
        }
    }
    if (!sane)
        return false;

    std::vector<int> seen(static_cast<std::size_t>(num_tasks), 0);
    for (int s = 0; s < sched.numStages; ++s) {
        for (int id : sched.perStageOrder[static_cast<std::size_t>(s)]) {
            if (id < 0 || id >= num_tasks) {
                finding(Rule::SchedShape)
                    .stage(s)
                    .msg(strformat("stage %d order references task %d"
                                   " (have %d tasks)",
                                   s, id, num_tasks))
                    .hint("order lists may only name existing tasks");
                sane = false;
                continue;
            }
            const Task &t = sched.tasks[static_cast<std::size_t>(id)];
            if (t.stage != s) {
                finding(Rule::SchedShape)
                    .stage(s)
                    .task(id)
                    .msg(strformat("task %d (stage %d) listed in"
                                   " stage %d's order",
                                   id, t.stage, s))
                    .hint("per-stage orders are per-device run"
                          " queues; a task runs on its own stage");
                sane = false;
                continue;
            }
            ++seen[static_cast<std::size_t>(id)];
        }
    }
    for (int id = 0; id < num_tasks; ++id) {
        if (seen[static_cast<std::size_t>(id)] != 1) {
            finding(Rule::SchedShape)
                .task(id)
                .msg(strformat("task %d appears %d times across stage"
                               " orders",
                               id, seen[static_cast<std::size_t>(id)]))
                .hint("every task must be ordered exactly once — the"
                      " order lists are permutations of the per-stage"
                      " task sets");
            sane = false;
        }
    }
    return sane;
}

/** Dependency-range pass; returns true when all dep ids resolve. */
bool
checkDepRanges(const Schedule &sched, Report &report, bool strict)
{
    bool sound = true;
    const auto num_tasks = static_cast<int>(sched.tasks.size());
    for (const Task &t : sched.tasks) {
        for (int dep : t.deps) {
            if (dep < 0 || dep >= num_tasks) {
                Finding(report, strict, Rule::SchedDepRange)
                    .task(t.id)
                    .stage(t.stage)
                    .msg(strformat("task %d depends on nonexistent"
                                   " task %d",
                                   t.id, dep))
                    .hint("dependencies must name tasks in this"
                          " schedule");
                sound = false;
            }
        }
    }
    return sound;
}

/** (stage, microbatch) -> task id lookup tables built without
 *  panicking on malformed schedules. */
struct TaskTables
{
    std::vector<std::vector<int>> fwd;  // [stage][mb]
    std::vector<std::vector<int>> bwd;

    TaskTables(const Schedule &sched)
    {
        const int M = sched.totalMicrobatches();
        fwd.assign(static_cast<std::size_t>(sched.numStages),
                   std::vector<int>(static_cast<std::size_t>(M), -1));
        bwd = fwd;
        for (const Task &t : sched.tasks) {
            if (t.microbatch < 0 || t.microbatch >= M)
                continue;
            auto s = static_cast<std::size_t>(t.stage);
            auto m = static_cast<std::size_t>(t.microbatch);
            if (t.kind == TaskKind::Forward && fwd[s][m] < 0)
                fwd[s][m] = t.id;
            else if (t.kind == TaskKind::Backward && bwd[s][m] < 0)
                bwd[s][m] = t.id;
        }
    }
};

/** Task-completeness and cross-stage dependency pass. */
void
checkTaskCompleteness(const Schedule &sched, const TaskTables &tables,
                      Report &report, bool strict)
{
    const int M = sched.totalMicrobatches();
    for (int s = 0; s < sched.numStages; ++s) {
        for (int m = 0; m < M; ++m) {
            auto si = static_cast<std::size_t>(s);
            auto mi = static_cast<std::size_t>(m);
            if (tables.fwd[si][mi] < 0) {
                Finding(report, strict, Rule::SchedMissingTask)
                    .stage(s)
                    .msg(strformat("no forward task for (stage %d,"
                                   " microbatch %d)",
                                   s, m))
                    .hint("every microbatch must traverse every"
                          " stage");
            }
            if (tables.bwd[si][mi] < 0) {
                Finding(report, strict, Rule::SchedMissingTask)
                    .stage(s)
                    .msg(strformat("no backward task for (stage %d,"
                                   " microbatch %d)",
                                   s, m))
                    .hint("every forward needs its backward — the"
                          " stash it leaves behind is otherwise never"
                          " released");
            }
        }
    }

    // Cross-stage dependency completeness: a forward needs the
    // upstream forward's boundary activation; a backward needs the
    // downstream backward's gradient (or, on the last stage, its own
    // forward).
    auto has_dep = [](const Task &t, int dep) {
        return dep >= 0 && std::find(t.deps.begin(), t.deps.end(),
                                     dep) != t.deps.end();
    };
    for (const Task &t : sched.tasks) {
        if (t.microbatch < 0 || t.microbatch >= M)
            continue;
        auto mi = static_cast<std::size_t>(t.microbatch);
        if (t.kind == TaskKind::Forward && t.stage > 0) {
            int need =
                tables.fwd[static_cast<std::size_t>(t.stage - 1)][mi];
            if (!has_dep(t, need)) {
                Finding(report, strict, Rule::SchedMissingDep)
                    .task(t.id)
                    .stage(t.stage)
                    .msg(strformat("fwd(%d, %d) does not depend on"
                                   " fwd(%d, %d)",
                                   t.stage, t.microbatch, t.stage - 1,
                                   t.microbatch))
                    .hint("without the edge the executor would run"
                          " the layer before its input activation"
                          " arrives");
            }
        } else if (t.kind == TaskKind::Backward) {
            if (t.stage < sched.numStages - 1) {
                int need = tables.bwd[static_cast<std::size_t>(
                    t.stage + 1)][mi];
                if (!has_dep(t, need)) {
                    Finding(report, strict, Rule::SchedMissingDep)
                        .task(t.id)
                        .stage(t.stage)
                        .msg(strformat("bwd(%d, %d) does not depend"
                                       " on bwd(%d, %d)",
                                       t.stage, t.microbatch,
                                       t.stage + 1, t.microbatch))
                        .hint("the input gradient comes from the"
                              " downstream stage");
                }
            } else {
                int need =
                    tables.fwd[static_cast<std::size_t>(t.stage)][mi];
                if (!has_dep(t, need)) {
                    Finding(report, strict, Rule::SchedMissingDep)
                        .task(t.id)
                        .stage(t.stage)
                        .msg(strformat("last-stage bwd(%d, %d) does"
                                       " not depend on its forward",
                                       t.stage, t.microbatch))
                        .hint("the loss gradient exists only after"
                              " the forward completes");
                }
            }
        }
    }
}

/**
 * Acyclicity over the union of dependency edges and per-stage order
 * edges (consecutive entries in an order list are implicitly ordered
 * because each stage's device is a serial queue).
 */
void
checkAcyclicity(const Schedule &sched, Report &report, bool strict)
{
    const auto n = sched.tasks.size();
    std::vector<std::vector<int>> out(n);
    std::vector<int> indeg(n, 0);
    auto edge = [&](int from, int to) {
        out[static_cast<std::size_t>(from)].push_back(to);
        ++indeg[static_cast<std::size_t>(to)];
    };
    for (const Task &t : sched.tasks) {
        for (int dep : t.deps)
            edge(dep, t.id);
    }
    for (const auto &order : sched.perStageOrder) {
        for (std::size_t i = 0; i + 1 < order.size(); ++i)
            edge(order[i], order[i + 1]);
    }

    std::vector<int> ready;
    for (std::size_t id = 0; id < n; ++id) {
        if (indeg[id] == 0)
            ready.push_back(static_cast<int>(id));
    }
    std::size_t done = 0;
    while (!ready.empty()) {
        int id = ready.back();
        ready.pop_back();
        ++done;
        for (int nxt : out[static_cast<std::size_t>(id)]) {
            if (--indeg[static_cast<std::size_t>(nxt)] == 0)
                ready.push_back(nxt);
        }
    }
    if (done == n)
        return;

    // Name one task on a cycle to anchor the diagnostic.
    int sample = -1;
    for (std::size_t id = 0; id < n; ++id) {
        if (indeg[id] > 0) {
            sample = static_cast<int>(id);
            break;
        }
    }
    Finding(report, strict, Rule::SchedCycle)
        .task(sample)
        .stage(sample >= 0
                   ? sched.tasks[static_cast<std::size_t>(sample)]
                         .stage
                   : -1)
        .msg(strformat("%zu tasks form dependency/order cycles"
                       " (e.g. task %d)",
                       n - done, sample))
        .hint("the executor would deadlock: no stage cursor could"
              " ever pass the cycle");
}

/**
 * Intra-stage ordering hazards: a backward ordered before the forward
 * whose stash it consumes.  For swapped tensors this is the classic
 * use-before-swap-in race (the swap-out that populates the metadata
 * table only runs at forward completion); for resident tensors it is
 * a use of memory that was never allocated.
 */
void
checkOrderHazards(const Schedule &sched, Report &report, bool strict)
{
    for (int s = 0; s < sched.numStages; ++s) {
        std::set<int> fwd_seen;
        for (int id : sched.perStageOrder[static_cast<std::size_t>(s)]) {
            const Task &t = sched.tasks[static_cast<std::size_t>(id)];
            if (t.kind == TaskKind::Forward) {
                fwd_seen.insert(t.microbatch);
            } else if (t.kind == TaskKind::Backward &&
                       !fwd_seen.count(t.microbatch)) {
                Finding(report, strict, Rule::SchedOrderHazard)
                    .task(id)
                    .stage(s)
                    .msg(strformat("bwd(%d, %d) ordered before its"
                                   " forward",
                                   s, t.microbatch))
                    .hint("the backward would consume a stash (or"
                          " trigger a swap-in) that nothing has"
                          " produced yet");
            }
        }
    }
}

/** Resolve the GPU hosting @p stage, assuming the mapping already
 *  passed shape/range checks. */
int
gpuForStage(const CompactionPlan &plan, int stage)
{
    if (plan.stageToGpu.empty())
        return stage;
    return plan.stageToGpu[static_cast<std::size_t>(stage)];
}

/**
 * Device-mapping pass.  Returns true when the stage->GPU assignment
 * is usable, which gates the capacity / D2D / fabric analyses.
 */
bool
checkMapping(const hw::Topology &topo, const Schedule &sched,
             const CompactionPlan &plan, Report &report, bool strict)
{
    const auto stages = static_cast<std::size_t>(sched.numStages);
    if (!plan.stageToGpu.empty() &&
        plan.stageToGpu.size() != stages) {
        Finding(report, strict, Rule::MapShape)
            .msg(strformat("stageToGpu has %zu entries for %d stages",
                           plan.stageToGpu.size(), sched.numStages))
            .hint("map every stage or leave the mapping empty for"
                  " identity");
        return false;
    }
    if (plan.stageToGpu.empty() &&
        sched.numStages > topo.numGpus()) {
        Finding(report, strict, Rule::MapShape)
            .msg(strformat("%d stages exceed %d GPUs with no explicit"
                           " mapping",
                           sched.numStages, topo.numGpus()))
            .hint("interleaved virtual stages require an explicit"
                  " stage-to-GPU mapping");
        return false;
    }

    bool usable = true;
    for (std::size_t s = 0; s < plan.stageToGpu.size(); ++s) {
        int gpu = plan.stageToGpu[s];
        if (gpu < 0 || gpu >= topo.numGpus()) {
            Finding(report, strict, Rule::MapDeviceRange)
                .stage(static_cast<int>(s))
                .gpu(gpu)
                .msg(strformat("stage %zu mapped to GPU %d of %d", s,
                               gpu, topo.numGpus()))
                .hint("mapped devices must exist in the topology");
            usable = false;
        }
    }
    if (!usable)
        return false;

    std::map<int, int> first_on_gpu;
    for (int s = 0; s < sched.numStages; ++s) {
        int gpu = gpuForStage(plan, s);
        auto [it, fresh] = first_on_gpu.emplace(gpu, s);
        if (!fresh) {
            Finding(report, strict, Rule::MapDuplicate)
                .stage(s)
                .gpu(gpu)
                .msg(strformat("stages %d and %d share GPU %d",
                               it->second, s, gpu))
                .hint("legal for interleaved virtual stages, but the"
                      " device then serializes both stages' compute"
                      " and carries both footprints");
        }
    }
    return true;
}

/** Cross-stage dependency edges that have no direct NVLink path under
 *  the mapping (the transfer bounces through host memory). */
void
checkFabricPaths(const hw::Topology &topo, const Schedule &sched,
                 const CompactionPlan &plan, Report &report,
                 bool strict)
{
    std::set<std::pair<int, int>> flagged;
    for (const Task &t : sched.tasks) {
        for (int dep : t.deps) {
            const Task &d = sched.tasks[static_cast<std::size_t>(dep)];
            if (d.stage == t.stage)
                continue;
            int a = gpuForStage(plan, d.stage);
            int b = gpuForStage(plan, t.stage);
            // pathLanes accepts NIC paths too: a cross-node stage
            // boundary is a real (if slower) direct path, not a
            // host bounce.
            if (a == b || topo.pathLanes(a, b) > 0)
                continue;
            if (!flagged.emplace(std::min(a, b), std::max(a, b))
                     .second)
                continue;
            Finding(report, strict, Rule::SchedFabricPath)
                .stage(t.stage)
                .gpu(b)
                .task(t.id)
                .msg(strformat("stages %d->%d mapped to GPUs %d->%d"
                               " with no direct NVLink",
                               d.stage, t.stage, a, b))
                .hint("every boundary transfer bounces through host"
                      " memory over PCIe; prefer a mapping that keeps"
                      " consecutive stages NVLink-adjacent");
        }
    }
}

/** Per-GPU projected memory demand under the plan (optimistic: swap
 *  classes count zero resident bytes). */
struct CapacityProjection
{
    std::vector<Bytes> demandOnGpu;     ///< projected peak per GPU
    std::vector<Bytes> stageDemand;     ///< per-stage contribution
    Bytes hostDemand = 0;               ///< pinned-host bytes
};

CapacityProjection
projectCapacity(const hw::Topology &topo,
                const model::TransformerModel &mdl,
                const partition::Partition &part,
                const Schedule &sched, const CompactionPlan &plan)
{
    CapacityProjection out;
    out.demandOnGpu.assign(static_cast<std::size_t>(topo.numGpus()),
                           0);
    out.stageDemand.assign(
        static_cast<std::size_t>(part.numStages()), 0);

    for (const auto &stage : part.stages) {
        const int s = stage.index;
        const int inflight = sched.maxInFlight(s);
        int versions = sched.weightVersions(s);
        bool stash_offloaded =
            plan.stashOffloaded(s) && versions > 2;
        if (stash_offloaded) {
            out.hostDemand +=
                stage.paramBytes * (versions - 2);
            versions = 2;
        }

        bool opt_offloaded =
            static_cast<std::size_t>(s) <
                plan.offloadOptState.size() &&
            plan.offloadOptState[static_cast<std::size_t>(s)];
        if (opt_offloaded)
            out.hostDemand += stage.optStateBytes;

        Bytes demand = stage.paramBytes * versions + stage.gradBytes +
                       (opt_offloaded ? 0 : stage.optStateBytes);

        const int gpu = gpuForStage(plan, s);
        bool has_grants = false;
        auto grants = plan.spareGrants.find(gpu);
        if (grants != plan.spareGrants.end()) {
            for (const auto &g : grants->second)
                has_grants |= g.budget > 0;
        }

        for (std::size_t l = stage.firstLayer; l <= stage.lastLayer;
             ++l) {
            const auto &layer = mdl.layer(l);
            Kind kind = plan.kindFor({s, static_cast<int>(l)});
            switch (kind) {
              case Kind::None:
                demand += layer.activationStash * inflight;
                break;
              case Kind::Recompute:
                // Stash dropped; the segment-boundary activation
                // stays resident per in-flight instance.
                demand += layer.outputBytes * inflight;
                break;
              case Kind::GpuCpuSwap:
                out.hostDemand +=
                    layer.activationStash * inflight;
                break;
              case Kind::D2dSwap:
                // With no grant to draw on the runtime keeps the
                // instances resident (d2dOverflow), so they count.
                if (!has_grants)
                    demand += layer.activationStash * inflight;
                break;
            }
        }
        out.stageDemand[static_cast<std::size_t>(s)] = demand;
        out.demandOnGpu[static_cast<std::size_t>(gpu)] += demand;
    }
    return out;
}

/** Capacity pass: projected per-GPU peak vs usable capacity, plus the
 *  pinned-host budget. */
void
checkCapacity(const hw::Topology &topo,
              const partition::Partition &part,
              const CompactionPlan &plan,
              const CapacityProjection &proj, Bytes capacity,
              Report &report, bool strict)
{
    for (const auto &stage : part.stages) {
        const int gpu = gpuForStage(plan, stage.index);
        Bytes on_gpu = proj.demandOnGpu[static_cast<std::size_t>(gpu)];
        if (on_gpu <= capacity)
            continue;
        Finding(report, strict, Rule::CapStageOverflow)
            .stage(stage.index)
            .gpu(gpu)
            .msg(strformat("projected peak %s on GPU %d exceeds"
                           " usable capacity %s",
                           util::formatBytes(on_gpu).c_str(), gpu,
                           util::formatBytes(capacity).c_str()))
            .hint("assign more activation classes to recompute or"
                  " swap, offload optimizer state, or rebalance the"
                  " partition");
    }

    Bytes host = topo.hostMemory();
    if (host > 0 && proj.hostDemand > host) {
        Finding(report, strict, Rule::CapHostOverflow)
            .msg(strformat("projected pinned-host demand %s exceeds"
                           " host memory %s",
                           util::formatBytes(proj.hostDemand).c_str(),
                           util::formatBytes(host).c_str()))
            .hint(topo.nvmeCapacity() > 0
                      ? "the overflow spills to NVMe at SSD"
                        " bandwidth"
                      : "swap-outs beyond the pool stay resident on"
                        " the GPU");
    }
}

/** D2D spare-grant soundness pass. */
void
checkGrants(const hw::Topology &topo,
            const partition::Partition &part,
            const CompactionPlan &plan,
            const CapacityProjection &proj, Bytes capacity,
            Report &report, bool strict)
{
    // Stages with D2D-assigned classes, keyed by their GPU.
    std::set<int> d2d_gpus;
    for (const auto &[ref, kind] : plan.activations) {
        if (kind != Kind::D2dSwap)
            continue;
        if (ref.stage >= 0 && ref.stage < part.numStages())
            d2d_gpus.insert(gpuForStage(plan, ref.stage));
    }

    std::map<int, Bytes> imported;  // importer -> total granted bytes
    std::set<std::pair<int, int>> edges;
    for (const auto &[exporter, grants] : plan.spareGrants) {
        bool exporter_ok =
            exporter >= 0 && exporter < topo.numGpus();
        if (!exporter_ok) {
            Finding(report, strict, Rule::D2dGrantRange)
                .gpu(exporter)
                .msg(strformat("grants issued for unknown exporter"
                               " GPU %d",
                               exporter))
                .hint("exporters must be GPUs of this topology");
        }
        for (const auto &g : grants) {
            if (g.budget < 0 || g.importerGpu < 0 ||
                g.importerGpu >= topo.numGpus()) {
                Finding(report, strict, Rule::D2dGrantRange)
                    .gpu(g.importerGpu)
                    .msg(strformat("grant %d->%d of %lld bytes is out"
                                   " of range",
                                   exporter, g.importerGpu,
                                   static_cast<long long>(g.budget)))
                    .hint("grants name existing GPUs and non-negative"
                          " budgets");
                continue;
            }
            if (g.importerGpu == exporter) {
                Finding(report, strict, Rule::D2dSelfGrant)
                    .gpu(exporter)
                    .msg(strformat("GPU %d grants %s of spare memory"
                                   " to itself",
                                   exporter,
                                   util::formatBytes(g.budget)
                                       .c_str()))
                    .hint("a self-grant saves nothing: the bytes stay"
                          " on the overflowing device");
                continue;
            }
            if (!exporter_ok)
                continue;
            if (topo.pathLanes(exporter, g.importerGpu) == 0) {
                Finding(report, strict, Rule::D2dUnreachable)
                    .gpu(exporter)
                    .msg(strformat("grant %d->%d crosses no NVLink"
                                   " lane or NIC path",
                                   exporter, g.importerGpu))
                    .hint("D2D swap stripes over direct NVLink or"
                          " inter-node NIC paths; grant only"
                          " reachable peers");
                continue;
            }
            if (g.budget > 0) {
                imported[g.importerGpu] += g.budget;
                edges.emplace(exporter, g.importerGpu);
            }
        }
        if (exporter_ok && !d2d_gpus.count(exporter)) {
            Finding(report, strict, Rule::D2dOrphanGrant)
                .gpu(exporter)
                .msg(strformat("GPU %d holds spare grants but no"
                               " activation class uses D2D swap"
                               " there",
                               exporter))
                .hint("dead grants pin importer spare memory that"
                      " could absorb other exporters");
        }
    }

    // D2D-assigned classes whose GPU has nothing to draw on.
    for (const auto &[ref, kind] : plan.activations) {
        if (kind != Kind::D2dSwap)
            continue;
        if (ref.stage < 0 || ref.stage >= part.numStages())
            continue;  // swap-unknown-tensor covers this
        int gpu = gpuForStage(plan, ref.stage);
        auto it = plan.spareGrants.find(gpu);
        bool funded = false;
        if (it != plan.spareGrants.end()) {
            for (const auto &g : it->second)
                funded |= g.budget > 0;
        }
        if (!funded) {
            Finding(report, strict, Rule::D2dNoGrant)
                .tensor(ref)
                .stage(ref.stage)
                .gpu(gpu)
                .msg(strformat("tensor %d.%d uses D2D swap but GPU %d"
                               " holds no spare grants",
                               ref.stage, ref.layer, gpu))
                .hint("the instances stay resident (d2dOverflow);"
                      " grant spare memory or choose another"
                      " technique");
        }
    }

    // Importer overcommit: granted bytes beyond the importer's
    // projected spare.
    for (const auto &[imp, bytes] : imported) {
        Bytes spare =
            capacity - proj.demandOnGpu[static_cast<std::size_t>(imp)];
        if (spare < 0)
            spare = 0;
        if (bytes > spare) {
            Finding(report, strict, Rule::D2dOvercommit)
                .gpu(imp)
                .msg(strformat("GPU %d granted %s but projects only"
                               " %s spare",
                               imp, util::formatBytes(bytes).c_str(),
                               util::formatBytes(spare).c_str()))
                .hint("imported tensors would push the importer past"
                      " capacity; shrink the grants or re-run the"
                      " mapper with fresher peaks");
        }
    }

    // Grant cycles: a GPU that exports to a peer it also imports
    // from is shuffling pressure in a loop.
    std::map<int, std::vector<int>> adj;
    for (const auto &[a, b] : edges)
        adj[a].push_back(b);
    std::map<int, int> color;  // 0 new, 1 open, 2 done
    std::vector<int> cycle_nodes;
    std::function<bool(int)> dfs = [&](int node) {
        color[node] = 1;
        for (int nxt : adj[node]) {
            if (color[nxt] == 1) {
                cycle_nodes.push_back(node);
                return true;
            }
            if (color[nxt] == 0 && dfs(nxt)) {
                cycle_nodes.push_back(node);
                return true;
            }
        }
        color[node] = 2;
        return false;
    };
    for (const auto &[node, _] : adj) {
        if (color[node] == 0 && dfs(node)) {
            Finding(report, strict, Rule::D2dGrantCycle)
                .gpu(cycle_nodes.front())
                .msg(strformat("spare-grant cycle through GPU %d"
                               " (%zu GPUs involved)",
                               cycle_nodes.front(),
                               cycle_nodes.size()))
                .hint("a GPU lending spare memory while evicting its"
                      " own tensors shuffles pressure in a loop;"
                      " break the cycle by granting in one"
                      " direction");
            break;
        }
    }
}

/** Swap-hazard pass over the plan's activation assignments. */
void
checkSwapAssignments(const hw::Topology &topo,
                     const model::TransformerModel &mdl,
                     const partition::Partition &part,
                     const CompactionPlan &plan, Report &report,
                     bool strict)
{
    // Per-stage PCIe budget heuristic mirroring the planner's seed
    // logic: each microbatch gives a stage roughly its fwd+bwd
    // compute time of channel budget.
    std::vector<util::Tick> pcie_load(
        static_cast<std::size_t>(part.numStages()), 0);

    for (const auto &[ref, kind] : plan.activations) {
        if (kind == Kind::None)
            continue;
        if (ref.stage < 0 || ref.stage >= part.numStages()) {
            Finding(report, strict, Rule::SwapUnknownTensor)
                .tensor(ref)
                .msg(strformat("plan names stage %d of %d", ref.stage,
                               part.numStages()))
                .hint("activation classes must belong to a pipeline"
                      " stage");
            continue;
        }
        const auto &stage =
            part.stages[static_cast<std::size_t>(ref.stage)];
        if (ref.layer < static_cast<int>(stage.firstLayer) ||
            ref.layer > static_cast<int>(stage.lastLayer)) {
            Finding(report, strict, Rule::SwapUnknownTensor)
                .tensor(ref)
                .stage(ref.stage)
                .msg(strformat("layer %d is outside stage %d's range"
                               " [%zu, %zu]",
                               ref.layer, ref.stage, stage.firstLayer,
                               stage.lastLayer))
                .hint("the executor would never generate this"
                      " instance, so the assignment is dead — or the"
                      " partition changed under the plan");
            continue;
        }
        const auto &layer =
            mdl.layer(static_cast<std::size_t>(ref.layer));
        if (layer.activationStash <= 0) {
            Finding(report, strict, Rule::SwapEmptyClass)
                .tensor(ref)
                .stage(ref.stage)
                .msg(strformat("tensor %d.%d has no stash bytes to"
                               " compact",
                               ref.stage, ref.layer))
                .hint("the assignment is a no-op; drop it");
        }
        if (kind == Kind::GpuCpuSwap) {
            pcie_load[static_cast<std::size_t>(ref.stage)] +=
                2 * topo.pcieSpec().transferTime(
                        layer.activationStash);
        }
    }

    for (const auto &stage : part.stages) {
        auto load = pcie_load[static_cast<std::size_t>(stage.index)];
        if (load <= 0)
            continue;
        util::Tick budget = topo.gpu().computeTime(
            3.0 * stage.fwdFlops, mdl.config().precision);
        if (load > budget) {
            Finding(report, strict, Rule::SwapIntervalTight)
                .stage(stage.index)
                .msg(strformat("GPU-CPU swap round trips need %s per"
                               " microbatch but compute hides only"
                               " %s",
                               util::formatTime(load).c_str(),
                               util::formatTime(budget).c_str()))
                .hint("the PCIe channel saturates and swap-ins stall"
                      " the backward; move classes to D2D swap or"
                      " recompute");
        }
    }

    // Cross-node D2D stripes ride the inter-node NICs, which are an
    // order of magnitude slower than NVLink: a grant ledger whose
    // cross-node round trips cannot hide behind compute assumed
    // intra-node bandwidth across a NIC link.
    if (topo.multiNodeFabric()) {
        std::vector<util::Tick> nic_load(
            static_cast<std::size_t>(part.numStages()), 0);
        for (const auto &[ref, kind] : plan.activations) {
            if (kind != Kind::D2dSwap)
                continue;
            if (ref.stage < 0 || ref.stage >= part.numStages())
                continue;
            const auto &stage =
                part.stages[static_cast<std::size_t>(ref.stage)];
            if (ref.layer < static_cast<int>(stage.firstLayer) ||
                ref.layer > static_cast<int>(stage.lastLayer))
                continue;
            const auto &layer =
                mdl.layer(static_cast<std::size_t>(ref.layer));
            if (layer.activationStash <= 0)
                continue;
            int gpu = gpuForStage(plan, ref.stage);
            if (gpu < 0 || gpu >= topo.numGpus())
                continue;
            auto it = plan.spareGrants.find(gpu);
            if (it == plan.spareGrants.end())
                continue;
            auto stripe = compaction::makeStripePlan(
                topo, gpu, it->second, layer.activationStash);
            for (const auto &s : stripe.stripes) {
                if (topo.sameNode(gpu, s.targetGpu))
                    continue;
                Bytes per_lane =
                    (s.bytes + s.lanes - 1) / s.lanes;
                nic_load[static_cast<std::size_t>(ref.stage)] +=
                    2 * topo.linkSpecBetween(gpu, s.targetGpu)
                            .transferTime(per_lane);
            }
        }
        for (const auto &stage : part.stages) {
            auto load =
                nic_load[static_cast<std::size_t>(stage.index)];
            if (load <= 0)
                continue;
            util::Tick budget = topo.gpu().computeTime(
                3.0 * stage.fwdFlops, mdl.config().precision);
            if (load > budget) {
                Finding(report, strict, Rule::D2dNicInfeasible)
                    .stage(stage.index)
                    .gpu(gpuForStage(plan, stage.index))
                    .msg(strformat(
                        "cross-node D2D round trips need %s per"
                        " microbatch over the NIC but compute hides"
                        " only %s",
                        util::formatTime(load).c_str(),
                        util::formatTime(budget).c_str()))
                    .hint("the grant ledger prices a NIC link like"
                          " NVLink; shift budget to intra-node"
                          " donors or GPU-CPU swap");
            }
        }
    }
}

/** Config-shape pass. */
void
checkConfigShape(const partition::Partition &part,
                 const Schedule &sched, const CompactionPlan &plan,
                 Report &report, bool strict)
{
    auto stages = static_cast<std::size_t>(part.numStages());
    auto check_vec = [&](const std::vector<bool> &v,
                         const char *name) {
        if (!v.empty() && v.size() != stages) {
            Finding(report, strict, Rule::CfgShape)
                .msg(strformat("%s has %zu entries for %zu stages",
                               name, v.size(), stages))
                .hint("size per-stage vectors to the stage count (or"
                      " leave them empty)");
        }
    };
    check_vec(plan.offloadOptState, "offloadOptState");
    check_vec(plan.offloadWeightStash, "offloadWeightStash");

    for (std::size_t s = 0;
         s < plan.offloadWeightStash.size() && s < stages; ++s) {
        if (!plan.offloadWeightStash[s])
            continue;
        if (!sched.weightStashing ||
            sched.weightVersions(static_cast<int>(s)) <= 2) {
            Finding(report, strict, Rule::CfgStashSync)
                .stage(static_cast<int>(s))
                .msg(strformat("stage %zu offloads its weight stash"
                               " but the schedule keeps at most 2"
                               " versions",
                               s))
                .hint("stash offload only pays off under PipeDream-"
                      "style weight stashing with >2 live versions");
        }
    }
}

} // namespace

Report
verifySchedule(const Schedule &sched)
{
    Report report;
    const bool strict = false;
    if (!checkScheduleStructure(sched, report, strict))
        return report;
    bool deps_sound = checkDepRanges(sched, report, strict);
    TaskTables tables(sched);
    checkTaskCompleteness(sched, tables, report, strict);
    checkOrderHazards(sched, report, strict);
    if (deps_sound)
        checkAcyclicity(sched, report, strict);
    return report;
}

Report
verifyPlan(const hw::Topology &topo,
           const model::TransformerModel &mdl,
           const partition::Partition &part, const Schedule &sched,
           const CompactionPlan &plan, const Options &opts)
{
    Report report;
    report.setPerRuleCap(opts.maxDiagsPerRule);
    const bool strict = opts.strict;

    bool structure_ok =
        checkScheduleStructure(sched, report, strict);
    bool deps_sound = false;
    if (structure_ok) {
        deps_sound = checkDepRanges(sched, report, strict);
        TaskTables tables(sched);
        checkTaskCompleteness(sched, tables, report, strict);
        checkOrderHazards(sched, report, strict);
        if (deps_sound)
            checkAcyclicity(sched, report, strict);
    }

    if (part.numStages() != sched.numStages) {
        Finding(report, strict, Rule::CfgShape)
            .msg(strformat("partition has %d stages, schedule %d",
                           part.numStages(), sched.numStages))
            .hint("partition and schedule must agree on pipeline"
                  " depth");
        return report;
    }

    checkConfigShape(part, sched, plan, report, strict);
    checkSwapAssignments(topo, mdl, part, plan, report, strict);

    bool mapping_ok =
        checkMapping(topo, sched, plan, report, strict);
    if (!mapping_ok || !structure_ok)
        return report;

    if (deps_sound)
        checkFabricPaths(topo, sched, plan, report, strict);

    const Bytes capacity = static_cast<Bytes>(
        static_cast<double>(topo.gpu().memCapacity) /
        opts.memOverheadFactor);
    CapacityProjection proj =
        projectCapacity(topo, mdl, part, sched, plan);
    checkCapacity(topo, part, plan, proj, capacity, report, strict);
    checkGrants(topo, part, plan, proj, capacity, report, strict);

    if (opts.analysis) {
        analysis::AnalysisOptions aopts;
        aopts.memOverheadFactor = opts.memOverheadFactor;
        analysis::AnalysisCertificate cert = analysis::analyzePlan(
            topo, mdl, part, sched, plan, aopts);
        // Invalid certificates carry no provable facts; the
        // structural rules above already flagged why.
        for (const analysis::GpuMemoryBound &b : cert.gpus) {
            if (!cert.valid)
                break;
            if (b.lower > cert.usableCapacity) {
                Finding(report, strict, Rule::CapProvedOverflow)
                    .gpu(b.gpu)
                    .msg(strformat(
                        "proved peak >= %s exceeds usable capacity"
                        " %s: every run of this plan OOMs",
                        util::formatBytes(b.lower).c_str(),
                        util::formatBytes(cert.usableCapacity)
                            .c_str()))
                    .hint("compact more classes on this GPU or remap"
                          " its stages");
            } else if (b.upper > cert.usableCapacity) {
                Finding(report, strict, Rule::CapUnproven)
                    .gpu(b.gpu)
                    .msg(strformat(
                        "peak bound [%s, %s] straddles usable"
                        " capacity %s: cannot prove the plan fits",
                        util::formatBytes(b.lower).c_str(),
                        util::formatBytes(b.upper).c_str(),
                        util::formatBytes(cert.usableCapacity)
                            .c_str()))
                    .hint("tighten swap hazard windows (more grant"
                          " budget, fewer swapped classes) to close"
                          " the interval");
            }
        }
    }
    return report;
}

namespace {

/** The resource one fault event occupies, as a grouping key for the
 *  overlap check: same kind + same key = same resource. */
std::string
faultResourceKey(const fault::FaultEvent &e)
{
    switch (e.kind) {
      case fault::EventKind::LinkDegrade:
        if (e.gpu >= 0)
            return strformat("pcie.gpu%d", e.gpu);
        return strformat("nvlink.%d-%d", std::min(e.src, e.dst),
                         std::max(e.src, e.dst));
      case fault::EventKind::TransferFail:
        return strformat("d2d.gpu%d-%d", e.src, e.dst);
      case fault::EventKind::GpuStraggle:
        return strformat("compute.gpu%d", e.gpu);
      case fault::EventKind::HostPressure:
        return "host";
    }
    return "?";
}

void
checkFaultEvent(const hw::Topology &topo,
                const fault::FaultEvent &e, std::size_t index,
                Report &report, bool strict)
{
    const int n = topo.numGpus();
    auto where = strformat("events[%zu] (%s)", index,
                           fault::eventKindName(e.kind));

    if (e.start < 0 || e.end <= e.start) {
        Finding(report, strict, Rule::FaultTimeRange)
            .msg(strformat("%s: window [%lld, %lld) is %s",
                           where.c_str(),
                           static_cast<long long>(e.start),
                           static_cast<long long>(e.end),
                           e.start < 0 ? "negative" : "empty"))
            .hint("start_ms must be >= 0 and end_ms > start_ms");
    }

    auto bad_gpu = [n](int g) { return g < 0 || g >= n; };
    switch (e.kind) {
      case fault::EventKind::LinkDegrade:
        if (e.gpu >= 0) {
            // PCIe variant.
            if (e.gpu >= n) {
                Finding(report, strict, Rule::FaultResourceRange)
                    .gpu(e.gpu)
                    .msg(strformat("%s: unknown GPU %d",
                                   where.c_str(), e.gpu))
                    .hint(strformat("topology has %d GPUs", n));
            }
        } else if (bad_gpu(e.src) || bad_gpu(e.dst) ||
                   e.src == e.dst) {
            Finding(report, strict, Rule::FaultResourceRange)
                .msg(strformat("%s: link (%d, %d) is not a valid GPU"
                               " pair",
                               where.c_str(), e.src, e.dst))
                .hint("name an NVLink pair via src/dst or a PCIe"
                      " link via gpu");
        } else if (topo.nvlinkLanes(e.src, e.dst) == 0) {
            Finding(report, strict, Rule::FaultResourceRange)
                .msg(strformat("%s: no NVLink between GPU %d and"
                               " GPU %d",
                               where.c_str(), e.src, e.dst))
                .hint("degrade an existing link, or the event can"
                      " never fire");
        }
        if (!(e.factor > 0.0)) {
            Finding(report, strict, Rule::FaultValueRange)
                .msg(strformat("%s: factor %g is not positive",
                               where.c_str(), e.factor))
                .hint("factor is a bandwidth multiplier in (0, 1]");
        }
        break;
      case fault::EventKind::TransferFail:
        if (bad_gpu(e.src)) {
            Finding(report, strict, Rule::FaultResourceRange)
                .gpu(e.src)
                .msg(strformat("%s: unknown exporter GPU %d",
                               where.c_str(), e.src))
                .hint(strformat("topology has %d GPUs", n));
        } else if (e.dst >= 0 &&
                   (e.dst >= n || e.dst == e.src ||
                    topo.nvlinkLanes(e.src, e.dst) == 0)) {
            Finding(report, strict, Rule::FaultResourceRange)
                .msg(strformat("%s: (%d, %d) is not an NVLink pair",
                               where.c_str(), e.src, e.dst))
                .hint("dst is optional; when given it must name a"
                      " peer reachable from src");
        }
        if (e.probability < 0.0 || e.probability > 1.0) {
            Finding(report, strict, Rule::FaultValueRange)
                .msg(strformat("%s: probability %g outside [0, 1]",
                               where.c_str(), e.probability))
                .hint("per-stripe failure probability");
        }
        break;
      case fault::EventKind::GpuStraggle:
        if (bad_gpu(e.gpu)) {
            Finding(report, strict, Rule::FaultResourceRange)
                .gpu(e.gpu)
                .msg(strformat("%s: unknown GPU %d", where.c_str(),
                               e.gpu))
                .hint(strformat("topology has %d GPUs", n));
        }
        if (!(e.factor > 0.0)) {
            Finding(report, strict, Rule::FaultValueRange)
                .msg(strformat("%s: factor %g is not positive",
                               where.c_str(), e.factor))
                .hint("factor is a compute-speed multiplier in"
                      " (0, 1]");
        }
        break;
      case fault::EventKind::HostPressure:
        if (e.bytes <= 0) {
            Finding(report, strict, Rule::FaultValueRange)
                .msg(strformat("%s: pressure of %lld bytes",
                               where.c_str(),
                               static_cast<long long>(e.bytes)))
                .hint("bytes_gb must be positive");
        } else if (e.bytes > topo.hostMemory()) {
            Finding(report, strict, Rule::FaultResourceRange)
                .msg(strformat("%s: pressure exceeds the %lld-byte"
                               " host pool",
                               where.c_str(),
                               static_cast<long long>(
                                   topo.hostMemory())))
                .hint("a cut larger than the pool clamps to zero"
                      " capacity; shrink it");
        }
        break;
    }
}

} // namespace

Report
verifyScenario(const hw::Topology &topo,
               const fault::Scenario &scenario, const Options &opts)
{
    Report report;
    report.setPerRuleCap(opts.maxDiagsPerRule);
    const bool strict = opts.strict;

    for (std::size_t i = 0; i < scenario.events.size(); ++i)
        checkFaultEvent(topo, scenario.events[i], i, report, strict);

    // Overlap: two windows of the same kind on the same resource.
    // (The injector composes overlapping windows multiplicatively,
    // which is almost never what a scenario author meant.)
    struct Window
    {
        util::Tick start;
        util::Tick end;
        std::size_t index;
    };
    std::map<std::string, std::vector<Window>> byResource;
    for (std::size_t i = 0; i < scenario.events.size(); ++i) {
        const auto &e = scenario.events[i];
        if (e.start < 0 || e.end <= e.start)
            continue;  // already flagged
        byResource[strformat("%s:%s", fault::eventKindName(e.kind),
                             faultResourceKey(e).c_str())]
            .push_back({e.start, e.end, i});
    }
    for (auto &[key, windows] : byResource) {
        std::sort(windows.begin(), windows.end(),
                  [](const Window &a, const Window &b) {
                      if (a.start != b.start)
                          return a.start < b.start;
                      return a.index < b.index;
                  });
        for (std::size_t i = 1; i < windows.size(); ++i) {
            if (windows[i].start < windows[i - 1].end) {
                Finding(report, strict, Rule::FaultOverlap)
                    .msg(strformat(
                        "events[%zu] and events[%zu] overlap on %s",
                        windows[i - 1].index, windows[i].index,
                        key.c_str()))
                    .hint("merge the windows or separate them in"
                          " time");
            }
        }
    }
    return report;
}

Report
verifyClusterSpec(const cluster::ClusterSpec &spec,
                  const Options &opts)
{
    Report report;
    report.setPerRuleCap(opts.maxDiagsPerRule);
    const bool strict = opts.strict;

    if (spec.nodes < 1 || spec.nodes > 64) {
        Finding(report, strict, Rule::ClusterNodeRange)
            .msg(strformat("node count %d outside [1, 64]",
                           spec.nodes))
            .hint("the simulator supports 1..64 nodes (up to 512"
                  " GPUs)");
    }
    auto node = cluster::nodeByName(spec.nodePreset);
    if (!node) {
        Finding(report, strict, Rule::ClusterNodeRange)
            .msg(strformat("unknown node preset \"%s\"",
                           spec.nodePreset.c_str()))
            .hint("known presets: dgx1, dgx1-p100, dgx2, hgx-h100,"
                  " dual-a100");
    }

    if (spec.nicsPerNode < 1 || spec.nicsPerNode > 8) {
        Finding(report, strict, Rule::ClusterLinkRange)
            .msg(strformat("NIC count %d per node outside [1, 8]",
                           spec.nicsPerNode))
            .hint("a node exposes between one and eight NICs");
    }
    if (!cluster::nicByName(spec.nicPreset)) {
        Finding(report, strict, Rule::ClusterLinkRange)
            .msg(strformat("unknown NIC preset \"%s\"",
                           spec.nicPreset.c_str()))
            .hint("known presets: ib-hdr, ib-ndr, roce100");
    }
    if (spec.nicGbps < 0.0 || spec.nicGbps > 3200.0) {
        Finding(report, strict, Rule::ClusterLinkRange)
            .msg(strformat("NIC bandwidth %g Gb/s outside [0, 3200]",
                           spec.nicGbps))
            .hint("0 keeps the preset bandwidth");
    }
    if (spec.nicLatencyUs < 0.0 || spec.nicLatencyUs > 100000.0) {
        Finding(report, strict, Rule::ClusterLinkRange)
            .msg(strformat("NIC latency %g us outside [0, 100000]",
                           spec.nicLatencyUs))
            .hint("0 keeps the preset latency");
    }

    if (!spec.nodeIds.empty()) {
        if (static_cast<int>(spec.nodeIds.size()) != spec.nodes) {
            Finding(report, strict, Rule::ClusterNodeRange)
                .msg(strformat("%zu node ids for %d nodes",
                               spec.nodeIds.size(), spec.nodes))
                .hint("give exactly one display id per node, or"
                      " none");
        }
        std::set<std::string> seen;
        for (std::size_t i = 0; i < spec.nodeIds.size(); ++i) {
            if (!seen.insert(spec.nodeIds[i]).second) {
                Finding(report, strict, Rule::ClusterDuplicateId)
                    .msg(strformat("node id \"%s\" appears more than"
                                   " once",
                                   spec.nodeIds[i].c_str()))
                    .hint("node ids must be unique");
            }
        }
    }
    return report;
}

} // namespace verify
} // namespace mpress
