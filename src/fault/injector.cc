#include "fault/injector.hh"

#include <algorithm>

namespace mpress {
namespace fault {

bool
Injector::windowActive(const FaultEvent &e) const
{
    const Tick now = _engine.now();
    return e.start <= now && now < e.end;
}

double
Injector::computeStretch(int gpu) const
{
    double stretch = 1.0;
    for (const auto &e : _scenario.events) {
        if (e.kind != EventKind::GpuStraggle || e.gpu != gpu)
            continue;
        if (!windowActive(e) || e.factor <= 0.0)
            continue;
        stretch *= 1.0 / e.factor;
    }
    return stretch;
}

double
Injector::transferStretch(hw::FabricResource res, int a, int b) const
{
    const bool nvlink = res == hw::FabricResource::NvlinkEgress ||
                        res == hw::FabricResource::NvlinkIngress;
    const bool pcie = res == hw::FabricResource::PcieH2D ||
                      res == hw::FabricResource::PcieD2H;
    double stretch = 1.0;
    for (const auto &e : _scenario.events) {
        if (e.kind != EventKind::LinkDegrade)
            continue;
        if (!windowActive(e) || e.factor <= 0.0)
            continue;
        if (e.gpu >= 0) {
            // PCIe degrade on one GPU's link (both directions).
            if (!pcie || a != e.gpu)
                continue;
        } else {
            // NVLink degrade on an unordered GPU pair.
            if (!nvlink)
                continue;
            const bool match = (a == e.src && b == e.dst) ||
                               (a == e.dst && b == e.src);
            if (!match)
                continue;
        }
        stretch *= 1.0 / e.factor;
    }
    return stretch;
}

bool
Injector::failsD2dStripe(int src, int dst)
{
    double p = 0.0;
    for (const auto &e : _scenario.events) {
        if (e.kind != EventKind::TransferFail)
            continue;
        if (!windowActive(e))
            continue;
        if (e.src != src || (e.dst >= 0 && e.dst != dst))
            continue;
        p = std::max(p, e.probability);
    }
    if (p <= 0.0)
        return false;
    return _rng.nextDouble() < p;
}

} // namespace fault
} // namespace mpress
