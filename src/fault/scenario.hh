/**
 * @file
 * Fault scenarios: deterministic, seeded descriptions of transient
 * hardware degradation injected into the discrete-event simulation.
 *
 * The paper's emulator-feedback loop (Sec. III-D) corrects *static*
 * imbalance; a Scenario models the *dynamic* failures a production
 * run sees — a flapping NVLink lane, a straggler GPU, host-DRAM
 * pressure shrinking the swap budget mid-run, a D2D stripe that has
 * to be re-issued.  Scenarios are plain data parsed from JSON
 * (util::jsonParse) and replayed from a seeded PRNG, so a faulted
 * run is exactly as reproducible as a healthy one.
 */

#ifndef MPRESS_FAULT_SCENARIO_HH
#define MPRESS_FAULT_SCENARIO_HH

#include <string>
#include <vector>

#include "util/units.hh"

namespace mpress {
namespace fault {

using util::Bytes;
using util::Tick;

/** The typed faults a scenario can schedule. */
enum class EventKind
{
    LinkDegrade,   ///< bandwidth multiplier on one link in a window
    TransferFail,  ///< D2D swap stripes fail and must be re-issued
    GpuStraggle,   ///< compute-stream slowdown on one GPU
    HostPressure,  ///< CPU-swap budget shrinks during the window
};

/** Display name for @p kind ("link-degrade", ...). */
const char *eventKindName(EventKind kind);

/**
 * One scheduled fault.  Which endpoint fields are meaningful depends
 * on the kind:
 *
 *  - LinkDegrade: either an NVLink pair (src, dst) or, with gpu >= 0,
 *    that GPU's PCIe link.  `factor` scales the effective bandwidth
 *    (0.25 = quarter speed).
 *  - TransferFail: D2D stripes leaving `src` (and, when dst >= 0,
 *    only those headed to `dst`) fail with `probability` while the
 *    window is active.
 *  - GpuStraggle: compute on `gpu` runs at `factor` of nominal speed.
 *  - HostPressure: `bytes` of pinned host memory become unavailable
 *    for swaps while the window is active.
 */
struct FaultEvent
{
    EventKind kind = EventKind::LinkDegrade;
    Tick start = 0;  ///< window start (sim time, inclusive)
    Tick end = 0;    ///< window end (sim time, exclusive)
    int gpu = -1;    ///< GpuStraggle / PCIe LinkDegrade target
    int src = -1;    ///< NVLink pair source / failing exporter
    int dst = -1;    ///< NVLink pair destination (-1 = any)
    double factor = 1.0;       ///< speed multiplier (degrade < 1)
    double probability = 1.0;  ///< per-stripe failure probability
    Bytes bytes = 0;           ///< host memory withheld (HostPressure)
};

/** A named, seeded schedule of fault events. */
struct Scenario
{
    std::string name = "faults";
    std::uint64_t seed = 1;
    std::vector<FaultEvent> events;

    /** Number of scheduled events of @p kind. */
    int countOf(EventKind kind) const;
};

/** Result of parseScenario(). */
struct ParsedScenario
{
    bool ok = false;
    Scenario scenario;
    std::string error;  ///< set when !ok
};

/** Result of parseScenarioMatrix(). */
struct ParsedScenarioMatrix
{
    bool ok = false;
    std::vector<Scenario> scenarios;
    std::string error;  ///< set when !ok
};

/**
 * Parse one scenario from JSON text.  Shape:
 *
 *   { "name": "flaky-nvlink", "seed": 7,
 *     "events": [
 *       {"type": "link-degrade", "start_ms": 0, "end_ms": 50,
 *        "src": 0, "dst": 1, "factor": 0.25},
 *       {"type": "transfer-fail", "start_ms": 10, "end_ms": 30,
 *        "src": 0, "probability": 1.0},
 *       {"type": "gpu-straggle", "start_ms": 0, "end_ms": 80,
 *        "gpu": 3, "factor": 0.5},
 *       {"type": "host-pressure", "start_ms": 20, "end_ms": 60,
 *        "bytes_gb": 128} ] }
 *
 * Only the JSON shape is checked here; semantic validity (times,
 * endpoint ids, window overlap) is mpress::verify's job.
 */
ParsedScenario parseScenario(const std::string &text);

/**
 * Parse a scenario matrix: either `{"scenarios": [ ... ]}` or a
 * single scenario object (a matrix of one).
 */
ParsedScenarioMatrix parseScenarioMatrix(const std::string &text);

} // namespace fault
} // namespace mpress

#endif // MPRESS_FAULT_SCENARIO_HH
