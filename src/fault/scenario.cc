#include "fault/scenario.hh"

#include <cmath>

#include "util/json.hh"
#include "util/strings.hh"

namespace mpress {
namespace fault {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::LinkDegrade:
        return "link-degrade";
      case EventKind::TransferFail:
        return "transfer-fail";
      case EventKind::GpuStraggle:
        return "gpu-straggle";
      case EventKind::HostPressure:
        return "host-pressure";
    }
    return "?";
}

int
Scenario::countOf(EventKind kind) const
{
    int n = 0;
    for (const auto &e : events)
        n += e.kind == kind ? 1 : 0;
    return n;
}

namespace {

bool
kindFromName(const std::string &name, EventKind *out)
{
    for (EventKind k :
         {EventKind::LinkDegrade, EventKind::TransferFail,
          EventKind::GpuStraggle, EventKind::HostPressure}) {
        if (name == eventKindName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

/** Millisecond JSON field -> Tick; NaN-safe truncation. */
Tick
msToTick(double ms)
{
    return static_cast<Tick>(ms * static_cast<double>(util::kMsec));
}

/** Parse one event object; returns false and sets *error on a shape
 *  problem.  Semantic checks live in mpress::verify. */
bool
parseEvent(const util::JsonValue &v, std::size_t index,
           FaultEvent *out, std::string *error)
{
    auto fail = [&](const char *why) {
        *error = util::strformat("events[%zu]: %s", index, why);
        return false;
    };
    if (!v.isObject())
        return fail("not an object");

    const util::JsonValue *type = v.find("type");
    if (type == nullptr || !type->isString())
        return fail("missing string field \"type\"");
    FaultEvent e;
    if (!kindFromName(type->str(), &e.kind))
        return fail("unknown event type");

    const util::JsonValue *start = v.find("start_ms");
    const util::JsonValue *end = v.find("end_ms");
    if (start == nullptr || !start->isNumber())
        return fail("missing numeric field \"start_ms\"");
    if (end == nullptr || !end->isNumber())
        return fail("missing numeric field \"end_ms\"");
    e.start = msToTick(start->number());
    e.end = msToTick(end->number());

    // Numeric fields shared across kinds; all optional here.  A field
    // that is present but not a number is a shape error.
    for (const char *key : {"gpu", "src", "dst", "factor",
                            "probability", "bytes_gb", "bytes"}) {
        const util::JsonValue *f = v.find(key);
        if (f != nullptr && !f->isNumber())
            return fail("non-numeric endpoint or value field");
    }
    e.gpu = static_cast<int>(v.numberOr("gpu", -1));
    e.src = static_cast<int>(v.numberOr("src", -1));
    e.dst = static_cast<int>(v.numberOr("dst", -1));
    e.factor = v.numberOr("factor", 1.0);
    e.probability = v.numberOr("probability", 1.0);
    if (v.find("bytes_gb") != nullptr) {
        e.bytes = static_cast<Bytes>(
            v.numberOr("bytes_gb", 0.0) *
            static_cast<double>(util::kGB));
    } else {
        e.bytes = static_cast<Bytes>(v.numberOr("bytes", 0.0));
    }
    *out = e;
    return true;
}

bool
scenarioFromValue(const util::JsonValue &v, Scenario *out,
                  std::string *error)
{
    if (!v.isObject()) {
        *error = "scenario is not a JSON object";
        return false;
    }
    Scenario sc;
    sc.name = v.stringOr("name", "faults");
    sc.seed = static_cast<std::uint64_t>(v.numberOr("seed", 1.0));
    const util::JsonValue *events = v.find("events");
    if (events == nullptr || !events->isArray()) {
        *error = "missing array field \"events\"";
        return false;
    }
    for (std::size_t i = 0; i < events->items().size(); ++i) {
        FaultEvent e;
        if (!parseEvent(events->items()[i], i, &e, error))
            return false;
        sc.events.push_back(e);
    }
    *out = std::move(sc);
    return true;
}

} // namespace

ParsedScenario
parseScenario(const std::string &text)
{
    ParsedScenario result;
    util::ParsedJson doc = util::jsonParse(text);
    if (!doc.ok) {
        result.error = doc.error;
        return result;
    }
    result.ok =
        scenarioFromValue(doc.value, &result.scenario, &result.error);
    return result;
}

ParsedScenarioMatrix
parseScenarioMatrix(const std::string &text)
{
    ParsedScenarioMatrix result;
    util::ParsedJson doc = util::jsonParse(text);
    if (!doc.ok) {
        result.error = doc.error;
        return result;
    }
    const util::JsonValue *list = doc.value.find("scenarios");
    if (list == nullptr) {
        // A single scenario object is a matrix of one.
        Scenario sc;
        if (!scenarioFromValue(doc.value, &sc, &result.error))
            return result;
        result.scenarios.push_back(std::move(sc));
        result.ok = true;
        return result;
    }
    if (!list->isArray()) {
        result.error = "\"scenarios\" is not an array";
        return result;
    }
    if (list->items().empty()) {
        result.error = "\"scenarios\" is empty";
        return result;
    }
    for (std::size_t i = 0; i < list->items().size(); ++i) {
        Scenario sc;
        std::string err;
        if (!scenarioFromValue(list->items()[i], &sc, &err)) {
            result.error =
                util::strformat("scenarios[%zu]: %s", i, err.c_str());
            return result;
        }
        result.scenarios.push_back(std::move(sc));
    }
    result.ok = true;
    return result;
}

} // namespace fault
} // namespace mpress
