/**
 * @file
 * Fault injector: answers "is this resource degraded right now?"
 * against a Scenario, with a seeded PRNG for probabilistic stripe
 * failures.  The injector is passive policy — the runtime drives it
 * at the points where faults take effect (compute submission, fabric
 * transfer shaping, D2D stripe issue), which keeps every draw on the
 * deterministic discrete-event order.
 */

#ifndef MPRESS_FAULT_INJECTOR_HH
#define MPRESS_FAULT_INJECTOR_HH

#include "fault/scenario.hh"
#include "hw/fabric.hh"
#include "sim/engine.hh"
#include "util/random.hh"

namespace mpress {
namespace fault {

class Injector
{
  public:
    /**
     * @param seed_salt  mixed into the PRNG seed so each node of a
     *  sharded simulation draws an independent deterministic stream;
     *  node 0 uses salt 0, which reproduces the unsalted stream
     *  exactly (single-node runs are byte-identical).
     */
    Injector(const Scenario &scenario, sim::Engine &engine,
             std::uint64_t seed_salt = 0)
        : _scenario(scenario), _engine(engine),
          _rng(scenario.seed + seed_salt)
    {
    }

    Injector(const Injector &) = delete;
    Injector &operator=(const Injector &) = delete;

    const Scenario &scenario() const { return _scenario; }

    /**
     * Multiplicative duration stretch for a compute task on @p gpu
     * at the current sim time.  1.0 when healthy; a straggle window
     * with factor f contributes a stretch of 1/f.
     */
    double computeStretch(int gpu) const;

    /**
     * Duration stretch for a fabric transfer at the current sim
     * time.  For NVLink resources @p a / @p b are the (src, dst)
     * GPU pair; for PCIe @p a is the GPU; NVMe has no endpoints.
     */
    double transferStretch(hw::FabricResource res, int a, int b) const;

    /**
     * Deterministic failure draw for one D2D stripe from @p src to
     * @p dst issued now.  Consumes PRNG state only while a matching
     * transfer-fail window is active, so healthy phases of a run are
     * byte-identical with and without trailing fault windows.
     */
    bool failsD2dStripe(int src, int dst);

  private:
    bool windowActive(const FaultEvent &e) const;

    const Scenario &_scenario;
    sim::Engine &_engine;
    util::SplitMix64 _rng;
};

} // namespace fault
} // namespace mpress

#endif // MPRESS_FAULT_INJECTOR_HH
