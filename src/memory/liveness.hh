/**
 * @file
 * Live-interval records for activation tensors.
 *
 * A tensor's live interval is the time between its generation (end of
 * the producing forward pass) and its next use (start of the matching
 * backward pass) — footnote 1 of the paper.  The profiler fills these
 * records from an instrumented emulator run; the planner compares
 * intervals against per-technique costs to pick compaction strategies
 * (Sec. III-D).
 */

#ifndef MPRESS_MEMORY_LIVENESS_HH
#define MPRESS_MEMORY_LIVENESS_HH

#include <map>
#include <vector>

#include "util/units.hh"

namespace mpress {
namespace memory {

using util::Bytes;
using util::Tick;

/** Identifies one activation tensor class: a layer within a stage.
 *  (Each microbatch creates an instance of the class; instances share
 *  size and compaction strategy.) */
struct TensorRef
{
    int stage = 0;
    int layer = 0;  ///< global layer index in the model

    bool
    operator<(const TensorRef &o) const
    {
        if (stage != o.stage)
            return stage < o.stage;
        return layer < o.layer;
    }

    bool
    operator==(const TensorRef &o) const
    {
        return stage == o.stage && layer == o.layer;
    }
};

/** One observed generation->use window for a tensor instance. */
struct LiveWindow
{
    int microbatch = 0;
    Tick generated = 0;  ///< producing forward completed
    Tick nextUse = 0;    ///< consuming backward started
};

/**
 * Aggregated liveness data for one tensor class.
 */
struct LiveInterval
{
    TensorRef ref;
    Bytes size = 0;
    std::vector<LiveWindow> windows;

    /** Shortest observed window: the budget any swap of this tensor
     *  must fit inside to stay off the critical path. */
    Tick
    minInterval() const
    {
        Tick best = -1;
        for (const auto &w : windows) {
            Tick span = w.nextUse - w.generated;
            if (best < 0 || span < best)
                best = span;
        }
        return best;
    }

    /** Mean observed window. */
    Tick
    meanInterval() const
    {
        if (windows.empty())
            return 0;
        Tick total = 0;
        for (const auto &w : windows)
            total += w.nextUse - w.generated;
        return total / static_cast<Tick>(windows.size());
    }
};

/**
 * The result of live-variable analysis over one emulated iteration:
 * per tensor class, its size and observed windows.
 */
class LivenessTable
{
  public:
    /** Record that @p ref (of @p size bytes) was generated at
     *  @p generated and next used at @p next_use by @p microbatch. */
    void record(TensorRef ref, Bytes size, int microbatch,
                Tick generated, Tick next_use);

    /** All tensor classes with at least one observed window. */
    std::vector<const LiveInterval *> all() const;

    /** Lookup; nullptr if @p ref was never recorded. */
    const LiveInterval *find(TensorRef ref) const;

    std::size_t size() const { return _table.size(); }

  private:
    std::map<TensorRef, LiveInterval> _table;
};

} // namespace memory
} // namespace mpress

#endif // MPRESS_MEMORY_LIVENESS_HH
