#include "memory/tracker.hh"

#include "util/logging.hh"

namespace mpress {
namespace memory {

DeviceMemoryTracker::DeviceMemoryTracker(std::string name,
                                         Bytes capacity)
    : _name(std::move(name)), _capacity(capacity)
{
    if (capacity < 0)
        util::fatal("negative capacity for %s", _name.c_str());
}

bool
DeviceMemoryTracker::alloc(TensorKind kind, Bytes bytes)
{
    if (bytes < 0)
        util::panic("negative allocation on %s", _name.c_str());
    _used += bytes;
    _byKind[static_cast<std::size_t>(kind)] += bytes;
    if (_used > _peak) {
        _peak = _used;
        _byKindAtPeak = _byKind;
    }
    if (_observer)
        _observer(kind, bytes);
    if (_used > _capacity) {
        _oom = true;
        return false;
    }
    return true;
}

void
DeviceMemoryTracker::free(TensorKind kind, Bytes bytes)
{
    if (bytes < 0)
        util::panic("negative free on %s", _name.c_str());
    auto &k = _byKind[static_cast<std::size_t>(kind)];
    if (bytes > k) {
        util::panic("double free on %s: releasing %lld %s bytes but"
                    " only %lld live",
                    _name.c_str(), static_cast<long long>(bytes),
                    model::tensorKindName(kind),
                    static_cast<long long>(k));
    }
    k -= bytes;
    _used -= bytes;
    if (_observer)
        _observer(kind, -bytes);
}

Bytes
DeviceMemoryTracker::usedByKind(TensorKind kind) const
{
    return _byKind[static_cast<std::size_t>(kind)];
}

Bytes
DeviceMemoryTracker::peakByKind(TensorKind kind) const
{
    return _byKindAtPeak[static_cast<std::size_t>(kind)];
}

void
DeviceMemoryTracker::resetStats()
{
    _peak = _used;
    _byKindAtPeak = _byKind;
    // The OOM flag is a latch: once a run has overshot capacity the
    // fact must survive a stats reset (usage may have dropped back
    // under capacity by the time resetStats() runs, and overwriting
    // the flag here would erase a recorded OOM).
    _oom = _oom || _used > _capacity;
}

void
DeviceMemoryTracker::setCapacity(Bytes capacity)
{
    if (capacity < 0)
        util::fatal("negative capacity for %s", _name.c_str());
    _capacity = capacity;
}

} // namespace memory
} // namespace mpress
