#include "memory/liveness.hh"

#include "util/logging.hh"

namespace mpress {
namespace memory {

void
LivenessTable::record(TensorRef ref, Bytes size, int microbatch,
                      Tick generated, Tick next_use)
{
    if (next_use < generated) {
        util::panic("tensor (%d,%d) used at %lld before generation"
                    " at %lld",
                    ref.stage, ref.layer,
                    static_cast<long long>(next_use),
                    static_cast<long long>(generated));
    }
    auto &entry = _table[ref];
    entry.ref = ref;
    if (entry.size != 0 && entry.size != size) {
        util::panic("tensor (%d,%d) recorded with differing sizes",
                    ref.stage, ref.layer);
    }
    entry.size = size;
    entry.windows.push_back({microbatch, generated, next_use});
}

std::vector<const LiveInterval *>
LivenessTable::all() const
{
    std::vector<const LiveInterval *> out;
    out.reserve(_table.size());
    for (const auto &[ref, interval] : _table)
        out.push_back(&interval);
    return out;
}

const LiveInterval *
LivenessTable::find(TensorRef ref) const
{
    auto it = _table.find(ref);
    return it == _table.end() ? nullptr : &it->second;
}

} // namespace memory
} // namespace mpress
