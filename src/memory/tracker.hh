/**
 * @file
 * Memory accounting: per-device GPU memory trackers with per-kind
 * breakdowns (the basis of Table I / Table II / Figure 2), a pinned
 * host pool, and OOM detection.
 *
 * The tracker is policy-free bookkeeping: the runtime executor calls
 * alloc/free as tensors come and go; capacity violations are recorded
 * (and optionally fatal to the run) rather than silently clamped, so
 * the "red crossed marks" of Figure 7 fall out of the simulation.
 */

#ifndef MPRESS_MEMORY_TRACKER_HH
#define MPRESS_MEMORY_TRACKER_HH

#include <array>
#include <functional>
#include <string>

#include "model/model.hh"
#include "util/units.hh"

namespace mpress {
namespace memory {

using model::TensorKind;
using util::Bytes;

/** Number of TensorKind values (for breakdown arrays). */
constexpr std::size_t kNumTensorKinds = 4;

/**
 * Byte-accurate accounting for one memory device (a GPU's HBM or the
 * host's pinned pool).
 */
class DeviceMemoryTracker
{
  public:
    /**
     * @param name      display name ("gpu0", "host-pinned")
     * @param capacity  byte capacity; allocations beyond it set the
     *                  OOM flag
     */
    DeviceMemoryTracker(std::string name, Bytes capacity);

    /**
     * Allocate @p bytes of @p kind.  Returns false and sets the OOM
     * flag if the allocation exceeds capacity (the bytes are still
     * accounted so that the caller can observe the overshoot).
     */
    bool alloc(TensorKind kind, Bytes bytes);

    /** Release @p bytes of @p kind; panics if the kind would go
     *  negative (a double-free in the executor). */
    void free(TensorKind kind, Bytes bytes);

    Bytes used() const { return _used; }
    Bytes peak() const { return _peak; }
    Bytes capacity() const { return _capacity; }
    Bytes available() const { return _capacity - _used; }

    /** Current bytes held by @p kind. */
    Bytes usedByKind(TensorKind kind) const;

    /** Bytes held by @p kind at the moment of overall peak usage. */
    Bytes peakByKind(TensorKind kind) const;

    /** True if any allocation ever exceeded capacity. */
    bool oomOccurred() const { return _oom; }

    /** Observer fired on every alloc (+bytes) and free (-bytes),
     *  after the books are updated.  The observability layer installs
     *  one to timestamp allocation events; the tracker itself stays
     *  clock-free. */
    using Observer = std::function<void(TensorKind, Bytes)>;

    /** Install (or clear) the allocation-event observer. */
    void setObserver(Observer obs) { _observer = std::move(obs); }

    const std::string &name() const { return _name; }

    /** Forget peaks, keep live allocations.  A latched OOM survives:
     *  the flag records that the run overshot at some point, which a
     *  stats reset must not erase. */
    void resetStats();

    /**
     * Adjust capacity mid-run (fault injection: host-memory pressure
     * shrinking the swap budget).  Live allocations are untouched;
     * if usage now exceeds the new capacity, subsequent allocations
     * fail but the OOM latch is not set retroactively.
     */
    void setCapacity(Bytes capacity);

  private:
    std::string _name;
    Bytes _capacity;
    Bytes _used = 0;
    Bytes _peak = 0;
    bool _oom = false;
    std::array<Bytes, kNumTensorKinds> _byKind{};
    std::array<Bytes, kNumTensorKinds> _byKindAtPeak{};
    Observer _observer;
};

/**
 * Pinned host memory pool used as the GPU-CPU swap target.
 *
 * Thin wrapper around a tracker; kept distinct because the paper's
 * implementation manages pinned memory outside the framework
 * allocator and the ZeRO baselines draw from the same pool.
 */
class PinnedHostPool
{
  public:
    explicit PinnedHostPool(Bytes capacity)
        : _tracker("host-pinned", capacity)
    {}

    bool
    reserve(Bytes bytes)
    {
        return _tracker.alloc(TensorKind::Activation, bytes);
    }

    void release(Bytes bytes)
    {
        _tracker.free(TensorKind::Activation, bytes);
    }

    Bytes used() const { return _tracker.used(); }
    Bytes peak() const { return _tracker.peak(); }
    Bytes capacity() const { return _tracker.capacity(); }
    bool exhausted() const { return _tracker.oomOccurred(); }

    /** Shrink or restore the pool's capacity mid-run (host-memory
     *  pressure fault).  Clamped at zero. */
    void
    setCapacity(Bytes capacity)
    {
        _tracker.setCapacity(capacity < 0 ? 0 : capacity);
    }

    /** Install (or clear) the allocation-event observer. */
    void
    setObserver(DeviceMemoryTracker::Observer obs)
    {
        _tracker.setObserver(std::move(obs));
    }

  private:
    DeviceMemoryTracker _tracker;
};

} // namespace memory
} // namespace mpress

#endif // MPRESS_MEMORY_TRACKER_HH
