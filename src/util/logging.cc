#include "util/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "util/strings.hh"

namespace mpress {
namespace util {

namespace {

// Relaxed atomic: the level is read from planner worker
// threads while tests/CLIs may set it; ordering does not
// matter, tearing must not happen.
std::atomic<LogLevel> global_level{LogLevel::Warn};

void
emit(const char *tag, const char *fmt, std::va_list args)
{
    std::string msg = vstrformat(fmt, args);
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    global_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return global_level.load(std::memory_order_relaxed);
}

void
inform(const char *fmt, ...)
{
    if (global_level.load(std::memory_order_relaxed) < LogLevel::Info)
        return;
    std::va_list args;
    va_start(args, fmt);
    emit("info", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    if (global_level.load(std::memory_order_relaxed) < LogLevel::Warn)
        return;
    std::va_list args;
    va_start(args, fmt);
    emit("warn", fmt, args);
    va_end(args);
}

void
debug(const char *fmt, ...)
{
    if (global_level.load(std::memory_order_relaxed) < LogLevel::Debug)
        return;
    std::va_list args;
    va_start(args, fmt);
    emit("debug", fmt, args);
    va_end(args);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    emit("panic", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace util
} // namespace mpress
