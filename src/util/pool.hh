/**
 * @file
 * A small fixed-size thread pool for the planner's emulator-feedback
 * search and the CLI's scenario sweep.
 *
 * The pool exposes one primitive, parallelFor(n, fn): invoke
 * fn(0..n-1), spread across the workers, and return when every index
 * has completed.  Callers own determinism: results must be written to
 * index-keyed slots so the outcome is independent of which worker ran
 * which index.  With one thread (or n == 1) the indices run inline on
 * the calling thread — no workers are ever touched — which makes the
 * threads=1 configuration trivially identical to a serial loop.
 *
 * Exceptions thrown by fn are captured; the first one (by index, not
 * by time of occurrence, so the error is deterministic too) is
 * rethrown from parallelFor on the calling thread after all indices
 * finish or are abandoned.
 */

#ifndef MPRESS_UTIL_POOL_HH
#define MPRESS_UTIL_POOL_HH

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mpress {
namespace util {

/** Fixed-size worker pool; see the file comment for the contract. */
class ThreadPool
{
  public:
    /** @param threads worker count; values < 1 are clamped to 1.
     *  With 1 thread no worker threads are spawned at all. */
    explicit ThreadPool(int threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of threads that execute parallelFor bodies (including
     *  the calling thread). */
    int threads() const { return _threads; }

    /**
     * Hardware threads available to this process, at least 1 (0 =
     * "unknown" from the standard library maps to 1).  Callers that
     * only want wall-clock speedup (the planner) clamp their worker
     * request to this: on an oversubscribed machine extra workers
     * add wakeup/context-switch cost without any parallelism, which
     * is exactly the plan/threads:N scaling regression.  The pool
     * itself never clamps — tests and sweeps may deliberately
     * oversubscribe to exercise concurrency.
     */
    static int hardwareThreads();

    /**
     * Index of the calling thread within the pool executing the
     * current parallelFor: 0 for the thread that called parallelFor,
     * 1..threads-1 for workers, 0 outside any batch.  Used to key
     * per-thread arenas (each index is owned by exactly one thread
     * for the duration of a batch).  parallelFor pins the caller's
     * index to 0 for the batch and restores it afterwards, so nested
     * pools (a sweep worker running a planner with its own pool) stay
     * within their own pool's range.
     */
    static int currentWorker();

    /**
     * Run @p fn for every index in [0, n).  Blocks until all indices
     * complete.  The calling thread participates, so the pool makes
     * progress even under heavy oversubscription.  Not reentrant: a
     * pool must not be used from inside one of its own bodies.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop(int worker);
    void runIndices();

    int _threads;
    std::vector<std::thread> _workers;

    std::mutex _mu;
    std::condition_variable _wake;   ///< workers wait for a batch
    std::condition_variable _done;   ///< caller waits for completion

    // Current batch state (guarded by _mu; indices claimed under the
    // lock so a plain counter suffices and TSan sees clean handoffs).
    const std::function<void(std::size_t)> *_fn = nullptr;
    std::size_t _batchSize = 0;
    std::size_t _nextIndex = 0;
    std::size_t _remaining = 0;
    std::uint64_t _generation = 0;
    bool _shutdown = false;

    // First failure by index (smallest index wins).
    std::exception_ptr _error;
    std::size_t _errorIndex = 0;
};

} // namespace util
} // namespace mpress

#endif // MPRESS_UTIL_POOL_HH
