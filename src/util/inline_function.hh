/**
 * @file
 * InlineFunction — a fixed-capacity, small-buffer-optimized move-only
 * callable for the simulation hot path.
 *
 * std::function heap-allocates any capture bigger than its tiny SSO
 * buffer (2-3 words on common ABIs), which made every scheduled event
 * an allocator round trip.  InlineFunction stores captures up to
 * Capacity bytes directly in the object, so the engine's event slots
 * can be pooled and the steady-state event loop never touches the
 * allocator.  Oversized or over-aligned captures fall back to a heap
 * allocation — correctness never depends on fitting — and each
 * fallback bumps a process-wide counter so benchmarks can assert
 * "allocs per event ≈ 0" on the hot loop.
 *
 * Contract:
 *  - move-only (captures may hold unique_ptr; std::function couldn't)
 *  - invoking an empty InlineFunction is undefined; callers test
 *    operator bool first, exactly like the `if (cb)` guards the
 *    std::function call sites already had
 *  - a wrapped callable stays inline iff it is nothrow-move-
 *    constructible and fits (sizeof <= Capacity, alignof <=
 *    max_align_t); InlineFunction itself satisfies both, so a
 *    completion of capacity C nests inline in one of capacity
 *    >= C + 2*sizeof(void*)
 *  - a trivially-copyable inline callable (the hot-path norm: `this`
 *    plus a few ints/pointers) carries no manager function at all —
 *    moves are a fixed-size memcpy and destruction is free, which is
 *    what keeps pooled event slots cheaper than std::function's
 *    pointer-juggling move
 */

#ifndef MPRESS_UTIL_INLINE_FUNCTION_HH
#define MPRESS_UTIL_INLINE_FUNCTION_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace mpress {
namespace util {

namespace detail {
/** Process-wide count of callables that spilled to the heap. */
inline std::atomic<std::uint64_t> g_callableHeapAllocs{0};
} // namespace detail

/** Number of InlineFunction constructions that heap-allocated since
 *  process start (or the last reset).  Relaxed: a benchmark metric,
 *  not a synchronization point. */
inline std::uint64_t
callableHeapAllocs()
{
    return detail::g_callableHeapAllocs.load(std::memory_order_relaxed);
}

/** Rewind the heap-fallback counter (bench harness only). */
inline void
resetCallableHeapAllocs()
{
    detail::g_callableHeapAllocs.store(0, std::memory_order_relaxed);
}

template <typename Sig, std::size_t Capacity = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity>
{
    static_assert(Capacity >= sizeof(void *),
                  "capacity must hold at least the heap pointer");

  public:
    InlineFunction() = default;
    InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, InlineFunction> &&
                  !std::is_same_v<D, std::nullptr_t> &&
                  std::is_invocable_r_v<R, D &, Args...>>>
    InlineFunction(F &&f)  // NOLINT(google-explicit-constructor)
    {
        construct<D>(std::forward<F>(f));
    }

    InlineFunction(InlineFunction &&other) noexcept
    {
        moveFrom(other);
    }

    InlineFunction &
    operator=(InlineFunction &&other) noexcept
    {
        if (this != &other) {
            destroy();
            moveFrom(other);
        }
        return *this;
    }

    InlineFunction &
    operator=(std::nullptr_t)
    {
        destroy();
        return *this;
    }

    InlineFunction(const InlineFunction &) = delete;
    InlineFunction &operator=(const InlineFunction &) = delete;

    /**
     * Destroy the current target and construct @p f in place: the
     * zero-move path for building a callable directly in pooled
     * storage (the engine's event slots).  Assigning another
     * InlineFunction degrades to a move, so nesting keeps working.
     */
    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  std::is_invocable_r_v<R, D &, Args...>>>
    void
    emplace(F &&f)
    {
        if constexpr (std::is_same_v<D, InlineFunction>) {
            *this = std::forward<F>(f);
        } else {
            destroy();
            construct<D>(std::forward<F>(f));
        }
    }

    ~InlineFunction() { destroy(); }

    explicit operator bool() const { return _invoke != nullptr; }

    R
    operator()(Args... args)
    {
        return _invoke(_buf, std::forward<Args>(args)...);
    }

  private:
    enum class Op
    {
        Relocate,  ///< move-construct into dst buffer, destroy src
        Destroy,
    };

    using InvokeFn = R (*)(void *, Args...);
    using ManageFn = void (*)(Op, void *, void *);

    template <typename F>
    static constexpr bool kFitsInline =
        sizeof(F) <= Capacity &&
        alignof(F) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<F>;

    template <typename F>
    static R
    invokeInline(void *obj, Args... args)
    {
        return (*static_cast<F *>(obj))(std::forward<Args>(args)...);
    }

    template <typename F>
    static R
    invokeHeap(void *obj, Args... args)
    {
        F *f = nullptr;
        std::memcpy(&f, obj, sizeof f);
        return (*f)(std::forward<Args>(args)...);
    }

    template <typename F>
    static void
    manageInline(Op op, void *src, void *dst)
    {
        F *f = static_cast<F *>(src);
        if (op == Op::Relocate)
            ::new (dst) F(std::move(*f));
        f->~F();
    }

    template <typename F>
    static void
    manageHeap(Op op, void *src, void *dst)
    {
        if (op == Op::Relocate) {
            // Ownership transfer: just move the pointer bits.
            std::memcpy(dst, src, sizeof(F *));
            return;
        }
        F *f = nullptr;
        std::memcpy(&f, src, sizeof f);
        delete f;
    }

    template <typename F, typename Arg>
    void
    construct(Arg &&f)
    {
        if constexpr (kFitsInline<F> &&
                      std::is_trivially_copyable_v<F> &&
                      std::is_trivially_destructible_v<F>) {
            // Trivial fast path: no manager.  moveFrom() relocates by
            // memcpy and destroy() is a pointer reset.
            ::new (static_cast<void *>(_buf)) F(std::forward<Arg>(f));
            _invoke = &invokeInline<F>;
            _manage = nullptr;
        } else if constexpr (kFitsInline<F>) {
            ::new (static_cast<void *>(_buf)) F(std::forward<Arg>(f));
            _invoke = &invokeInline<F>;
            _manage = &manageInline<F>;
        } else {
            F *p = new F(std::forward<Arg>(f));
            detail::g_callableHeapAllocs.fetch_add(
                1, std::memory_order_relaxed);
            std::memcpy(_buf, &p, sizeof p);
            _invoke = &invokeHeap<F>;
            _manage = &manageHeap<F>;
        }
    }

    void
    moveFrom(InlineFunction &other) noexcept
    {
        _invoke = other._invoke;
        _manage = other._manage;
        if (_manage != nullptr)
            _manage(Op::Relocate, other._buf, _buf);
        else if (_invoke != nullptr)
            std::memcpy(_buf, other._buf, Capacity);
        other._invoke = nullptr;
        other._manage = nullptr;
    }

    void
    destroy()
    {
        if (_manage != nullptr)
            _manage(Op::Destroy, _buf, nullptr);
        _invoke = nullptr;
        _manage = nullptr;
    }

    alignas(std::max_align_t) unsigned char _buf[Capacity];
    InvokeFn _invoke = nullptr;
    ManageFn _manage = nullptr;
};

} // namespace util
} // namespace mpress

#endif // MPRESS_UTIL_INLINE_FUNCTION_HH
