/**
 * @file
 * Leveled logging plus gem5-style fatal()/panic() termination helpers.
 *
 * fatal() reports a user-caused error (bad configuration) and exits;
 * panic() reports an internal invariant violation and aborts.  inform()
 * and warn() emit status without stopping the run.  The global level
 * filters inform/warn output (benchmarks run with Level::Quiet).
 */

#ifndef MPRESS_UTIL_LOGGING_HH
#define MPRESS_UTIL_LOGGING_HH

#include <string>

namespace mpress {
namespace util {

/** Verbosity levels, most verbose last. */
enum class LogLevel
{
    Quiet,  ///< only fatal/panic
    Warn,   ///< warnings and above
    Info,   ///< informational messages and above
    Debug,  ///< everything
};

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

/** Current process-wide log level. */
LogLevel logLevel();

/** Emit an informational message (filtered below LogLevel::Info). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a warning (filtered below LogLevel::Warn). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug message (filtered below LogLevel::Debug). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report a user error and exit(1).  Never returns. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal bug and abort().  Never returns. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace util
} // namespace mpress

#endif // MPRESS_UTIL_LOGGING_HH
