/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64).
 *
 * The simulator itself is deterministic; randomness is only used by
 * randomized property tests and by the DGX-2 "random stage-to-device
 * mapping" path of the device mapper (Sec. III-C), where determinism
 * across runs still matters for reproducible benchmarks.
 */

#ifndef MPRESS_UTIL_RANDOM_HH
#define MPRESS_UTIL_RANDOM_HH

#include <cstdint>
#include <string_view>

namespace mpress {
namespace util {

/** 64-bit FNV-1a hash of @p data.  Used as the planner's trial-cache
 *  signature; collisions are tolerated by the cache (it keeps the
 *  full key text and treats a mismatch as a miss), so the hash only
 *  has to be fast and well-spread, not cryptographic. */
inline std::uint64_t
fnv1a64(std::string_view data)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : data) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/** SplitMix64 generator: tiny, fast, and statistically adequate. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : _state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (_state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t _state;
};

} // namespace util
} // namespace mpress

#endif // MPRESS_UTIL_RANDOM_HH
