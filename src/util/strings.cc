#include "util/strings.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace mpress {
namespace util {

bool
parseInt(const std::string &text, int *out)
{
    const char *first = text.data();
    const char *last = first + text.size();
    // from_chars accepts a leading '-' but not '+'; allow both so
    // "--threads +4" reads as the obvious number.
    if (first != last && *first == '+')
        ++first;
    if (first == last)
        return false;
    int value = 0;
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last)
        return false;
    *out = value;
    return true;
}

bool
parseDouble(const std::string &text, double *out)
{
    const char *first = text.data();
    const char *last = first + text.size();
    if (first != last && *first == '+')
        ++first;
    if (first == last)
        return false;
    double value = 0.0;
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last || !std::isfinite(value))
        return false;
    *out = value;
    return true;
}

std::string
vstrformat(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed <= 0)
        return std::string();

    std::string out(static_cast<std::size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

std::string
strformat(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vstrformat(fmt, args);
    va_end(args);
    return out;
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = text.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(text.substr(start));
            break;
        }
        out.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

} // namespace util
} // namespace mpress
