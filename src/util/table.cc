#include "util/table.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mpress {
namespace util {

TextTable::TextTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
    if (_headers.empty())
        panic("TextTable requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> row)
{
    if (row.size() != _headers.size()) {
        panic("TextTable row arity %zu != header arity %zu",
              row.size(), _headers.size());
    }
    _rows.push_back(std::move(row));
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(_headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : _rows)
        emit_row(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0)
                os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit_row(_headers);
    for (const auto &row : _rows)
        emit_row(row);
}

} // namespace util
} // namespace mpress
