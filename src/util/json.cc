#include "util/json.hh"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "util/strings.hh"

namespace mpress {
namespace util {

namespace {

/** Recursive-descent JSON syntax walker over a borrowed string. */
class JsonChecker
{
  public:
    JsonChecker(const std::string &text, const JsonLimits &limits)
        : _text(text), _limits(limits)
    {}

    bool
    check(std::string *error, JsonErrorKind *kind = nullptr)
    {
        bool ok = checkSize() && value() &&
                  (skipWs(), _pos == _text.size());
        if (!ok) {
            if (_kind == JsonErrorKind::None)
                _kind = JsonErrorKind::Syntax;
            if (error) {
                *error = strformat(
                    "invalid JSON at byte %zu: %s", _pos,
                    _reason.empty() ? "trailing content"
                                    : _reason.c_str());
            }
        }
        if (kind)
            *kind = ok ? JsonErrorKind::None : _kind;
        return ok;
    }

  private:
    bool
    fail(const char *reason,
         JsonErrorKind kind = JsonErrorKind::Syntax)
    {
        if (_reason.empty()) {
            _reason = reason;
            _kind = kind;
        }
        return false;
    }

    bool
    checkSize()
    {
        if (_limits.maxBytes > 0 && _text.size() > _limits.maxBytes) {
            return fail("input exceeds size limit",
                        JsonErrorKind::TooLarge);
        }
        return true;
    }

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r'))
            ++_pos;
    }

    bool
    consume(char c)
    {
        if (_pos < _text.size() && _text[_pos] == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    char
    peek() const
    {
        return _pos < _text.size() ? _text[_pos] : '\0';
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (!consume(*p))
                return fail("bad literal");
        }
        return true;
    }

    bool
    string()
    {
        if (!consume('"'))
            return fail("expected string");
        while (_pos < _text.size()) {
            auto c = static_cast<unsigned char>(_text[_pos]);
            if (c == '"') {
                ++_pos;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                ++_pos;
                char esc = peek();
                if (esc == 'u') {
                    ++_pos;
                    for (int i = 0; i < 4; ++i, ++_pos) {
                        if (!std::isxdigit(
                                static_cast<unsigned char>(peek())))
                            return fail("bad \\u escape");
                    }
                } else if (esc == '"' || esc == '\\' || esc == '/' ||
                           esc == 'b' || esc == 'f' || esc == 'n' ||
                           esc == 'r' || esc == 't') {
                    ++_pos;
                } else {
                    return fail("bad escape");
                }
            } else {
                ++_pos;
            }
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        consume('-');
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("bad number");
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++_pos;
        if (consume('.')) {
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad fraction");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++_pos;
            if (peek() == '+' || peek() == '-')
                ++_pos;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        return true;
    }

    bool
    array()
    {
        ++_pos;  // '['
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    bool
    object()
    {
        ++_pos;  // '{'
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            if (!value())
                return false;
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    bool
    value()
    {
        if (++_depth > std::max(_limits.maxDepth, 1)) {
            return fail("nesting too deep",
                        JsonErrorKind::DepthExceeded);
        }
        skipWs();
        bool ok;
        switch (peek()) {
          case '{':
            ok = object();
            break;
          case '[':
            ok = array();
            break;
          case '"':
            ok = string();
            break;
          case 't':
            ok = literal("true");
            break;
          case 'f':
            ok = literal("false");
            break;
          case 'n':
            ok = literal("null");
            break;
          default:
            ok = number();
            break;
        }
        --_depth;
        return ok;
    }

    const std::string &_text;
    JsonLimits _limits;
    std::size_t _pos = 0;
    int _depth = 0;
    std::string _reason;
    JsonErrorKind _kind = JsonErrorKind::None;
};

/** Recursive-descent document builder; grammar mirrors JsonChecker
 *  exactly, so anything jsonParseable() accepts parses here too. */
class JsonParser
{
  public:
    JsonParser(const std::string &text, const JsonLimits &limits)
        : _text(text), _limits(limits)
    {}

    ParsedJson
    parse()
    {
        ParsedJson out;
        out.ok = checkSize() && value(out.value) &&
                 (skipWs(), _pos == _text.size());
        if (!out.ok) {
            out.error = strformat(
                "invalid JSON at byte %zu: %s", _pos,
                _reason.empty() ? "trailing content"
                                : _reason.c_str());
            out.errorKind = _kind == JsonErrorKind::None
                                ? JsonErrorKind::Syntax
                                : _kind;
            out.value = JsonValue();
        }
        return out;
    }

  private:
    bool
    fail(const char *reason,
         JsonErrorKind kind = JsonErrorKind::Syntax)
    {
        if (_reason.empty()) {
            _reason = reason;
            _kind = kind;
        }
        return false;
    }

    bool
    checkSize()
    {
        if (_limits.maxBytes > 0 && _text.size() > _limits.maxBytes) {
            return fail("input exceeds size limit",
                        JsonErrorKind::TooLarge);
        }
        return true;
    }

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r'))
            ++_pos;
    }

    bool
    consume(char c)
    {
        if (_pos < _text.size() && _text[_pos] == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    char
    peek() const
    {
        return _pos < _text.size() ? _text[_pos] : '\0';
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (!consume(*p))
                return fail("bad literal");
        }
        return true;
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(
                static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool
    string(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        while (_pos < _text.size()) {
            auto c = static_cast<unsigned char>(_text[_pos]);
            if (c == '"') {
                ++_pos;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                ++_pos;
                char esc = peek();
                switch (esc) {
                  case 'u': {
                    ++_pos;
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i, ++_pos) {
                        char h = peek();
                        if (!std::isxdigit(
                                static_cast<unsigned char>(h)))
                            return fail("bad \\u escape");
                        cp = cp * 16 +
                             static_cast<unsigned>(
                                 std::isdigit(
                                     static_cast<unsigned char>(h))
                                     ? h - '0'
                                     : (std::tolower(h) - 'a' + 10));
                    }
                    appendUtf8(out, cp);
                    break;
                  }
                  case '"': case '\\': case '/':
                    out.push_back(esc);
                    ++_pos;
                    break;
                  case 'b': out.push_back('\b'); ++_pos; break;
                  case 'f': out.push_back('\f'); ++_pos; break;
                  case 'n': out.push_back('\n'); ++_pos; break;
                  case 'r': out.push_back('\r'); ++_pos; break;
                  case 't': out.push_back('\t'); ++_pos; break;
                  default:
                    return fail("bad escape");
                }
            } else {
                out.push_back(static_cast<char>(c));
                ++_pos;
            }
        }
        return fail("unterminated string");
    }

    bool
    number(double &out)
    {
        std::size_t start = _pos;
        consume('-');
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("bad number");
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++_pos;
        if (consume('.')) {
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad fraction");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++_pos;
            if (peek() == '+' || peek() == '-')
                ++_pos;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        try {
            out = std::stod(_text.substr(start, _pos - start));
        } catch (const std::out_of_range &) {
            // Syntactically valid but outside double range (1e400):
            // a diagnostic beats a throw or a silent infinity.
            return fail("number out of range");
        }
        return true;
    }

    bool
    array(JsonValue &out)
    {
        ++_pos;  // '['
        std::vector<JsonValue> items;
        skipWs();
        if (consume(']')) {
            out = JsonValue::makeArray(std::move(items));
            return true;
        }
        for (;;) {
            JsonValue v;
            if (!value(v))
                return false;
            items.push_back(std::move(v));
            skipWs();
            if (consume(']')) {
                out = JsonValue::makeArray(std::move(items));
                return true;
            }
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    bool
    object(JsonValue &out)
    {
        ++_pos;  // '{'
        std::vector<std::pair<std::string, JsonValue>> members;
        skipWs();
        if (consume('}')) {
            out = JsonValue::makeObject(std::move(members));
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            JsonValue v;
            if (!value(v))
                return false;
            members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (consume('}')) {
                out = JsonValue::makeObject(std::move(members));
                return true;
            }
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    bool
    value(JsonValue &out)
    {
        if (++_depth > std::max(_limits.maxDepth, 1)) {
            return fail("nesting too deep",
                        JsonErrorKind::DepthExceeded);
        }
        skipWs();
        bool ok;
        switch (peek()) {
          case '{':
            ok = object(out);
            break;
          case '[':
            ok = array(out);
            break;
          case '"': {
            std::string s;
            ok = string(s);
            if (ok)
                out = JsonValue::makeString(std::move(s));
            break;
          }
          case 't':
            ok = literal("true");
            if (ok)
                out = JsonValue::makeBool(true);
            break;
          case 'f':
            ok = literal("false");
            if (ok)
                out = JsonValue::makeBool(false);
            break;
          case 'n':
            ok = literal("null");
            if (ok)
                out = JsonValue::makeNull();
            break;
          default: {
            double n = 0.0;
            ok = number(n);
            if (ok)
                out = JsonValue::makeNumber(n);
            break;
          }
        }
        --_depth;
        return ok;
    }

    const std::string &_text;
    JsonLimits _limits;
    std::size_t _pos = 0;
    int _depth = 0;
    std::string _reason;
    JsonErrorKind _kind = JsonErrorKind::None;
};

} // namespace

const char *
jsonErrorKindName(JsonErrorKind kind)
{
    switch (kind) {
      case JsonErrorKind::None:
        return "none";
      case JsonErrorKind::Syntax:
        return "syntax";
      case JsonErrorKind::DepthExceeded:
        return "depth-exceeded";
      case JsonErrorKind::TooLarge:
        return "too-large";
    }
    return "unknown";
}

bool
jsonParseable(const std::string &text, std::string *error,
              const JsonLimits &limits)
{
    return JsonChecker(text, limits).check(error);
}

ParsedJson
jsonParse(const std::string &text, const JsonLimits &limits)
{
    return JsonParser(text, limits).parse();
}

std::string
jsonQuote(std::string_view text)
{
    std::string out;
    out.reserve(text.size() + 2);
    out.push_back('"');
    for (char ch : text) {
        auto c = static_cast<unsigned char>(ch);
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20)
                out += strformat("\\u%04x", c);
            else
                out.push_back(ch);
            break;
        }
    }
    out.push_back('"');
    return out;
}

namespace {

void
renderInto(const JsonValue &value, std::string &out)
{
    switch (value.type()) {
      case JsonValue::Type::Null:
        out += "null";
        break;
      case JsonValue::Type::Bool:
        out += value.boolean() ? "true" : "false";
        break;
      case JsonValue::Type::Number: {
        // %.17g round-trips every double; integral values render
        // without an exponent or trailing ".0" noise.
        double n = value.number();
        if (n == static_cast<double>(static_cast<long long>(n))) {
            out += strformat("%lld",
                             static_cast<long long>(n));
        } else {
            out += strformat("%.17g", n);
        }
        break;
      }
      case JsonValue::Type::String:
        out += jsonQuote(value.str());
        break;
      case JsonValue::Type::Array: {
        out.push_back('[');
        const char *sep = "";
        for (const auto &item : value.items()) {
            out += sep;
            sep = ",";
            renderInto(item, out);
        }
        out.push_back(']');
        break;
      }
      case JsonValue::Type::Object: {
        out.push_back('{');
        const char *sep = "";
        for (const auto &[key, member] : value.members()) {
            out += sep;
            sep = ",";
            out += jsonQuote(key);
            out.push_back(':');
            renderInto(member, out);
        }
        out.push_back('}');
        break;
      }
    }
}

} // namespace

std::string
jsonRender(const JsonValue &value)
{
    std::string out;
    renderInto(value, out);
    return out;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : _members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::string
JsonValue::stringOr(const std::string &key,
                    const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isString() ? v->str() : fallback;
}

double
JsonValue::numberOr(const std::string &key, double fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isNumber() ? v->number() : fallback;
}

bool
JsonValue::boolOr(const std::string &key, bool fallback) const
{
    const JsonValue *v = find(key);
    return v && v->isBool() ? v->boolean() : fallback;
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v._type = Type::Bool;
    v._bool = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v._type = Type::Number;
    v._number = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v._type = Type::String;
    v._string = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v._type = Type::Array;
    v._items = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(
    std::vector<std::pair<std::string, JsonValue>> ms)
{
    JsonValue v;
    v._type = Type::Object;
    v._members = std::move(ms);
    return v;
}

} // namespace util
} // namespace mpress
