#include "util/json.hh"

#include <cctype>

#include "util/strings.hh"

namespace mpress {
namespace util {

namespace {

/** Recursive-descent JSON syntax walker over a borrowed string. */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : _text(text) {}

    bool
    check(std::string *error)
    {
        bool ok = value() && (skipWs(), _pos == _text.size());
        if (!ok && error) {
            *error = strformat(
                "invalid JSON at byte %zu: %s", _pos,
                _reason.empty() ? "trailing content" : _reason.c_str());
        }
        return ok;
    }

  private:
    bool
    fail(const char *reason)
    {
        if (_reason.empty())
            _reason = reason;
        return false;
    }

    void
    skipWs()
    {
        while (_pos < _text.size() &&
               (_text[_pos] == ' ' || _text[_pos] == '\t' ||
                _text[_pos] == '\n' || _text[_pos] == '\r'))
            ++_pos;
    }

    bool
    consume(char c)
    {
        if (_pos < _text.size() && _text[_pos] == c) {
            ++_pos;
            return true;
        }
        return false;
    }

    char
    peek() const
    {
        return _pos < _text.size() ? _text[_pos] : '\0';
    }

    bool
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (!consume(*p))
                return fail("bad literal");
        }
        return true;
    }

    bool
    string()
    {
        if (!consume('"'))
            return fail("expected string");
        while (_pos < _text.size()) {
            auto c = static_cast<unsigned char>(_text[_pos]);
            if (c == '"') {
                ++_pos;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c == '\\') {
                ++_pos;
                char esc = peek();
                if (esc == 'u') {
                    ++_pos;
                    for (int i = 0; i < 4; ++i, ++_pos) {
                        if (!std::isxdigit(
                                static_cast<unsigned char>(peek())))
                            return fail("bad \\u escape");
                    }
                } else if (esc == '"' || esc == '\\' || esc == '/' ||
                           esc == 'b' || esc == 'f' || esc == 'n' ||
                           esc == 'r' || esc == 't') {
                    ++_pos;
                } else {
                    return fail("bad escape");
                }
            } else {
                ++_pos;
            }
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        consume('-');
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return fail("bad number");
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++_pos;
        if (consume('.')) {
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad fraction");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++_pos;
            if (peek() == '+' || peek() == '-')
                ++_pos;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return fail("bad exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++_pos;
        }
        return true;
    }

    bool
    array()
    {
        ++_pos;  // '['
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    bool
    object()
    {
        ++_pos;  // '{'
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            if (!value())
                return false;
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    bool
    value()
    {
        if (++_depth > 256)
            return fail("nesting too deep");
        skipWs();
        bool ok;
        switch (peek()) {
          case '{':
            ok = object();
            break;
          case '[':
            ok = array();
            break;
          case '"':
            ok = string();
            break;
          case 't':
            ok = literal("true");
            break;
          case 'f':
            ok = literal("false");
            break;
          case 'n':
            ok = literal("null");
            break;
          default:
            ok = number();
            break;
        }
        --_depth;
        return ok;
    }

    const std::string &_text;
    std::size_t _pos = 0;
    int _depth = 0;
    std::string _reason;
};

} // namespace

bool
jsonParseable(const std::string &text, std::string *error)
{
    return JsonChecker(text).check(error);
}

} // namespace util
} // namespace mpress
