/**
 * @file
 * Units used throughout MPress: byte counts, simulated time, bandwidth
 * and FLOP quantities, plus formatting helpers.
 *
 * All simulated time is kept in integer nanoseconds (Tick) so that the
 * discrete-event engine is deterministic and free of floating-point
 * ordering artifacts.  Byte counts are signed 64-bit so that deltas can
 * be expressed without casts.
 */

#ifndef MPRESS_UTIL_UNITS_HH
#define MPRESS_UTIL_UNITS_HH

#include <cstdint>
#include <string>

namespace mpress {
namespace util {

/** Byte count.  Signed so that memory deltas can be negative. */
using Bytes = std::int64_t;

/** Simulated time in nanoseconds. */
using Tick = std::int64_t;

/** Floating point operation count. */
using Flops = double;

constexpr Bytes kKiB = 1024;
constexpr Bytes kMiB = 1024 * kKiB;
constexpr Bytes kGiB = 1024 * kMiB;

/** Decimal gigabyte, as used by GPU spec sheets (e.g. "32 GB" V100). */
constexpr Bytes kGB = 1000LL * 1000 * 1000;
constexpr Bytes kMB = 1000LL * 1000;

constexpr Tick kNsec = 1;
constexpr Tick kUsec = 1000 * kNsec;
constexpr Tick kMsec = 1000 * kUsec;
constexpr Tick kSec = 1000 * kMsec;

/** Convert a byte count to (binary) gibibytes. */
constexpr double
toGiB(Bytes bytes)
{
    return static_cast<double>(bytes) / static_cast<double>(kGiB);
}

/** Convert a byte count to decimal gigabytes. */
constexpr double
toGB(Bytes bytes)
{
    return static_cast<double>(bytes) / static_cast<double>(kGB);
}

/** Convert a tick count to fractional milliseconds. */
constexpr double
toMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kMsec);
}

/** Convert a tick count to fractional seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kSec);
}

/**
 * Unidirectional bandwidth of a link or device.
 *
 * Stored as bytes per second.  Provides the transfer-time arithmetic
 * used by the hardware model; callers that need a size-dependent
 * effective bandwidth apply their ramp model before calling
 * transferTime().
 */
class Bandwidth
{
  public:
    constexpr Bandwidth() : _bytesPerSec(0.0) {}

    constexpr explicit Bandwidth(double bytes_per_sec)
        : _bytesPerSec(bytes_per_sec)
    {}

    /** Construct from a GB/s figure as quoted on spec sheets. */
    static constexpr Bandwidth
    fromGBps(double gbps)
    {
        return Bandwidth(gbps * 1e9);
    }

    constexpr double bytesPerSec() const { return _bytesPerSec; }
    constexpr double gbps() const { return _bytesPerSec / 1e9; }

    constexpr bool valid() const { return _bytesPerSec > 0.0; }

    /**
     * Time to move @p bytes at this bandwidth, rounded up to a whole
     * tick so that nonzero transfers always take nonzero time.
     */
    Tick
    transferTime(Bytes bytes) const
    {
        if (bytes <= 0 || _bytesPerSec <= 0.0)
            return 0;
        double secs = static_cast<double>(bytes) / _bytesPerSec;
        double ticks = secs * static_cast<double>(kSec);
        Tick t = static_cast<Tick>(ticks);
        return t < 1 ? 1 : t;
    }

    constexpr Bandwidth
    operator*(double factor) const
    {
        return Bandwidth(_bytesPerSec * factor);
    }

    constexpr Bandwidth
    operator+(Bandwidth other) const
    {
        return Bandwidth(_bytesPerSec + other._bytesPerSec);
    }

    constexpr bool
    operator<(Bandwidth other) const
    {
        return _bytesPerSec < other._bytesPerSec;
    }

  private:
    double _bytesPerSec;
};

/** Render a byte count with an adaptive binary suffix ("12.3 GiB"). */
std::string formatBytes(Bytes bytes);

/** Render a tick count with an adaptive suffix ("4.20 ms"). */
std::string formatTime(Tick t);

} // namespace util
} // namespace mpress

#endif // MPRESS_UTIL_UNITS_HH
