#include "util/units.hh"

#include "util/strings.hh"

namespace mpress {
namespace util {

std::string
formatBytes(Bytes bytes)
{
    // Negate in the double domain: -INT64_MIN overflows int64_t.
    const bool neg = bytes < 0;
    double v = static_cast<double>(bytes);
    if (neg)
        v = -v;
    const char *suffix = "B";
    if (v >= static_cast<double>(kGiB)) {
        v /= static_cast<double>(kGiB);
        suffix = "GiB";
    } else if (v >= static_cast<double>(kMiB)) {
        v /= static_cast<double>(kMiB);
        suffix = "MiB";
    } else if (v >= static_cast<double>(kKiB)) {
        v /= static_cast<double>(kKiB);
        suffix = "KiB";
    }
    return strformat("%s%.2f %s", neg ? "-" : "", v, suffix);
}

std::string
formatTime(Tick t)
{
    const bool neg = t < 0;
    double v = static_cast<double>(t);
    if (neg)
        v = -v;
    const char *suffix = "ns";
    if (v >= static_cast<double>(kSec)) {
        v /= static_cast<double>(kSec);
        suffix = "s";
    } else if (v >= static_cast<double>(kMsec)) {
        v /= static_cast<double>(kMsec);
        suffix = "ms";
    } else if (v >= static_cast<double>(kUsec)) {
        v /= static_cast<double>(kUsec);
        suffix = "us";
    }
    return strformat("%s%.2f %s", neg ? "-" : "", v, suffix);
}

} // namespace util
} // namespace mpress
