/**
 * @file
 * Plain-text table and CSV writers used by the benchmark harnesses to
 * print paper-shaped rows (Tables I-IV, Figures 2/4/7/8/9 series).
 */

#ifndef MPRESS_UTIL_TABLE_HH
#define MPRESS_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace mpress {
namespace util {

/**
 * A simple column-aligned text table.
 *
 * Columns are sized to their widest cell; numeric alignment is not
 * attempted — callers pre-format numbers (strformat) so that benchmark
 * output is stable and diffable.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must match the header arity. */
    void addRow(std::vector<std::string> row);

    /** Render the table, header first, followed by a rule and rows. */
    void print(std::ostream &os) const;

    /** Render the same content as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

    std::size_t numRows() const { return _rows.size(); }
    std::size_t numCols() const { return _headers.size(); }

  private:
    std::vector<std::string> _headers;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace util
} // namespace mpress

#endif // MPRESS_UTIL_TABLE_HH
