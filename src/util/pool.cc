#include "util/pool.hh"

namespace mpress {
namespace util {

namespace {

/** Worker index of this thread within the pool batch it is running
 *  (see ThreadPool::currentWorker). */
thread_local int tl_worker = 0;

/** Pin tl_worker for a scope; restores the previous value so nested
 *  parallelFor calls (pool inside a pool's body) see their own 0. */
struct ScopedWorkerId
{
    int saved;
    explicit ScopedWorkerId(int id) : saved(tl_worker)
    {
        tl_worker = id;
    }
    ~ScopedWorkerId() { tl_worker = saved; }
    ScopedWorkerId(const ScopedWorkerId &) = delete;
    ScopedWorkerId &operator=(const ScopedWorkerId &) = delete;
};

} // namespace

int
ThreadPool::currentWorker()
{
    return tl_worker;
}

int
ThreadPool::hardwareThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int threads)
    : _threads(threads < 1 ? 1 : threads)
{
    for (int i = 1; i < _threads; ++i)
        _workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mu);
        _shutdown = true;
    }
    _wake.notify_all();
    for (auto &w : _workers)
        w.join();
}

void
ThreadPool::runIndices()
{
    std::unique_lock<std::mutex> lock(_mu);
    while (_nextIndex < _batchSize) {
        std::size_t idx = _nextIndex++;
        const auto *fn = _fn;
        lock.unlock();
        std::exception_ptr err;
        try {
            (*fn)(idx);
        } catch (...) {
            err = std::current_exception();
        }
        lock.lock();
        if (err && (!_error || idx < _errorIndex)) {
            _error = err;
            _errorIndex = idx;
        }
        if (--_remaining == 0) {
            // Caller may be asleep in parallelFor.
            _done.notify_all();
        }
    }
}

void
ThreadPool::workerLoop(int worker)
{
    tl_worker = worker;
    std::unique_lock<std::mutex> lock(_mu);
    std::uint64_t seen = 0;
    while (true) {
        _wake.wait(lock, [&] {
            return _shutdown ||
                   (_generation != seen && _nextIndex < _batchSize);
        });
        if (_shutdown)
            return;
        seen = _generation;
        lock.unlock();
        runIndices();
        lock.lock();
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (_workers.empty() || n == 1) {
        // Serial fast path: identical to a plain loop, and the only
        // path taken at threads=1 (the determinism baseline).
        ScopedWorkerId scope(0);
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(_mu);
        _fn = &fn;
        _batchSize = n;
        _nextIndex = 0;
        _remaining = n;
        _error = nullptr;
        _errorIndex = 0;
        ++_generation;
    }
    _wake.notify_all();
    {
        ScopedWorkerId scope(0);
        runIndices();  // the caller works too
    }
    std::unique_lock<std::mutex> lock(_mu);
    _done.wait(lock, [&] { return _remaining == 0; });
    _fn = nullptr;
    _batchSize = 0;
    if (_error)
        std::rethrow_exception(_error);
}

} // namespace util
} // namespace mpress
