/**
 * @file
 * Minimal strict JSON support: a syntax checker and a small document
 * parser.
 *
 * The exporters (Chrome traces, metrics dumps) hand their output to
 * external consumers — Perfetto, plotting scripts — that reject
 * malformed JSON outright.  The validator lets tests and tools
 * assert exported files actually parse without pulling in a JSON
 * library dependency.
 *
 * jsonParse() additionally builds a document tree (JsonValue), used
 * by consumers of user-supplied JSON such as the CLI's --sweep
 * scenario specs.  Same RFC 8259 grammar; numbers are held as
 * doubles, object member order is preserved.
 */

#ifndef MPRESS_UTIL_JSON_HH
#define MPRESS_UTIL_JSON_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace mpress {
namespace util {

/**
 * Returns true when @p text is exactly one syntactically valid JSON
 * value (with optional surrounding whitespace).  On failure, writes a
 * byte offset and reason into @p error when non-null.
 */
bool jsonParseable(const std::string &text,
                   std::string *error = nullptr);

/** One parsed JSON value (see jsonParse()). */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::Null; }
    bool isBool() const { return _type == Type::Bool; }
    bool isNumber() const { return _type == Type::Number; }
    bool isString() const { return _type == Type::String; }
    bool isArray() const { return _type == Type::Array; }
    bool isObject() const { return _type == Type::Object; }

    /** Value accessors; meaningful only for the matching type. */
    bool boolean() const { return _bool; }
    double number() const { return _number; }
    const std::string &str() const { return _string; }

    /** Array elements (empty unless isArray()). */
    const std::vector<JsonValue> &items() const { return _items; }

    /** Object members in source order (empty unless isObject()). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return _members;
    }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Typed member lookups with defaults for absent keys. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
    double numberOr(const std::string &key, double fallback) const;
    bool boolOr(const std::string &key, bool fallback) const;

    // Builder interface for the parser.
    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> ms);

  private:
    Type _type = Type::Null;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<JsonValue> _items;
    std::vector<std::pair<std::string, JsonValue>> _members;
};

/** Result of jsonParse(): a document or an error description. */
struct ParsedJson
{
    bool ok = false;
    JsonValue value;
    std::string error;  ///< set when !ok, names offset and reason
};

/** Parse @p text into a document tree (strict RFC 8259). */
ParsedJson jsonParse(const std::string &text);

} // namespace util
} // namespace mpress

#endif // MPRESS_UTIL_JSON_HH
