/**
 * @file
 * Minimal strict JSON support: a syntax checker and a small document
 * parser.
 *
 * The exporters (Chrome traces, metrics dumps) hand their output to
 * external consumers — Perfetto, plotting scripts — that reject
 * malformed JSON outright.  The validator lets tests and tools
 * assert exported files actually parse without pulling in a JSON
 * library dependency.
 *
 * jsonParse() additionally builds a document tree (JsonValue), used
 * by consumers of user-supplied JSON such as the CLI's --sweep
 * scenario specs.  Same RFC 8259 grammar; numbers are held as
 * doubles, object member order is preserved.
 *
 * Both entry points are safe on untrusted bytes: parsing is bounded
 * by explicit resource limits (JsonLimits) instead of the process
 * stack, and every rejection carries a typed reason (JsonErrorKind)
 * so network-facing callers (mpress-serve) can answer with a typed
 * protocol error rather than a crash or an opaque string.
 */

#ifndef MPRESS_UTIL_JSON_HH
#define MPRESS_UTIL_JSON_HH

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mpress {
namespace util {

/**
 * Resource bounds enforced while parsing.  The recursive-descent
 * walkers consume one stack frame per nesting level, so maxDepth is
 * what stands between a hostile `[[[[...` payload and a stack
 * overflow; maxBytes rejects oversized documents before any work.
 */
struct JsonLimits
{
    /** Maximum container nesting depth (top-level value = depth 1).
     *  Values < 1 are treated as 1. */
    int maxDepth = 256;

    /** Maximum input size in bytes; 0 = unlimited. */
    std::size_t maxBytes = 0;
};

/** Why a parse was rejected (None on success). */
enum class JsonErrorKind
{
    None,           ///< parse succeeded
    Syntax,         ///< malformed JSON text
    DepthExceeded,  ///< nesting beyond JsonLimits::maxDepth
    TooLarge,       ///< input beyond JsonLimits::maxBytes
};

/** Returns a stable display name for @p kind. */
const char *jsonErrorKindName(JsonErrorKind kind);

/**
 * Returns true when @p text is exactly one syntactically valid JSON
 * value (with optional surrounding whitespace) within @p limits.  On
 * failure, writes a byte offset and reason into @p error when
 * non-null.
 */
bool jsonParseable(const std::string &text,
                   std::string *error = nullptr,
                   const JsonLimits &limits = {});

/** One parsed JSON value (see jsonParse()). */
class JsonValue
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Type type() const { return _type; }
    bool isNull() const { return _type == Type::Null; }
    bool isBool() const { return _type == Type::Bool; }
    bool isNumber() const { return _type == Type::Number; }
    bool isString() const { return _type == Type::String; }
    bool isArray() const { return _type == Type::Array; }
    bool isObject() const { return _type == Type::Object; }

    /** Value accessors; meaningful only for the matching type. */
    bool boolean() const { return _bool; }
    double number() const { return _number; }
    const std::string &str() const { return _string; }

    /** Array elements (empty unless isArray()). */
    const std::vector<JsonValue> &items() const { return _items; }

    /** Object members in source order (empty unless isObject()). */
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return _members;
    }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Typed member lookups with defaults for absent keys. */
    std::string stringOr(const std::string &key,
                         const std::string &fallback) const;
    double numberOr(const std::string &key, double fallback) const;
    bool boolOr(const std::string &key, bool fallback) const;

    // Builder interface for the parser.
    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> ms);

  private:
    Type _type = Type::Null;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<JsonValue> _items;
    std::vector<std::pair<std::string, JsonValue>> _members;
};

/** Result of jsonParse(): a document or an error description. */
struct ParsedJson
{
    bool ok = false;
    JsonValue value;
    std::string error;  ///< set when !ok, names offset and reason

    /** Typed rejection reason (None when ok). */
    JsonErrorKind errorKind = JsonErrorKind::None;
};

/** Parse @p text into a document tree (strict RFC 8259), enforcing
 *  @p limits. */
ParsedJson jsonParse(const std::string &text,
                     const JsonLimits &limits = {});

/** Quote @p text as a JSON string literal: surrounding double quotes
 *  plus escapes for quotes, backslashes and control characters.  The
 *  output always satisfies jsonParseable(). */
std::string jsonQuote(std::string_view text);

/** Serialize @p value back to compact JSON text (no whitespace,
 *  object member order preserved).  jsonRender(jsonParse(t).value)
 *  parses to an equivalent document; used to hand a subtree of a
 *  request document to a text-based parser (fault scenario specs
 *  embedded in an mpress-serve request). */
std::string jsonRender(const JsonValue &value);

} // namespace util
} // namespace mpress

#endif // MPRESS_UTIL_JSON_HH
