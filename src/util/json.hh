/**
 * @file
 * Minimal strict JSON syntax checker.
 *
 * The exporters (Chrome traces, metrics dumps) hand their output to
 * external consumers — Perfetto, plotting scripts — that reject
 * malformed JSON outright.  This validator lets tests and tools
 * assert exported files actually parse without pulling in a JSON
 * library dependency.  It validates syntax only (RFC 8259 grammar);
 * it builds no document tree.
 */

#ifndef MPRESS_UTIL_JSON_HH
#define MPRESS_UTIL_JSON_HH

#include <string>

namespace mpress {
namespace util {

/**
 * Returns true when @p text is exactly one syntactically valid JSON
 * value (with optional surrounding whitespace).  On failure, writes a
 * byte offset and reason into @p error when non-null.
 */
bool jsonParseable(const std::string &text,
                   std::string *error = nullptr);

} // namespace util
} // namespace mpress

#endif // MPRESS_UTIL_JSON_HH
