/**
 * @file
 * printf-style string formatting helpers.
 *
 * GCC 12 does not ship std::format, so MPress uses a thin snprintf
 * wrapper for the handful of places that need formatted strings.
 */

#ifndef MPRESS_UTIL_STRINGS_HH
#define MPRESS_UTIL_STRINGS_HH

#include <cstdarg>
#include <string>
#include <vector>

namespace mpress {
namespace util {

/** Format @p fmt with printf semantics into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf counterpart of strformat(). */
std::string vstrformat(const char *fmt, std::va_list args);

/**
 * Strict checked integer parse: the whole of @p text must be one
 * base-10 integer (optional sign) that fits an int.  Returns false —
 * leaving @p out untouched — on empty input, trailing junk, or
 * overflow, so CLI flag handling can reject malformed values instead
 * of crashing in std::stoi.
 */
bool parseInt(const std::string &text, int *out);

/** parseInt() counterpart for doubles (strict, whole-string,
 *  finite-range; accepts the usual fixed/scientific forms). */
bool parseDouble(const std::string &text, double *out);

/** Split @p text on @p sep, keeping empty fields. */
std::vector<std::string> split(const std::string &text, char sep);

/** Join @p parts with @p sep between consecutive elements. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

} // namespace util
} // namespace mpress

#endif // MPRESS_UTIL_STRINGS_HH
