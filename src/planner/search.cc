#include "planner/search.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "analysis/analyzer.hh"
#include "compaction/serialize.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/strings.hh"

namespace mpress {
namespace planner {

using util::Bytes;

namespace {

/** Append the raw bytes of @p v to @p key.  Scalars are appended one
 *  by one (never whole structs), so no padding bytes leak in. */
template <typename T>
void
putScalar(std::string &key, T v)
{
    char raw[sizeof(T)];
    std::memcpy(raw, &v, sizeof(T));
    key.append(raw, sizeof(T));
}

/**
 * Content digest of a (topology, model, partition, schedule) job,
 * prefixed to every memoization key so drivers for different jobs can
 * share one TrialCache without ever exchanging entries.  Scalars go
 * in raw (tagged + length-prefixed like trialKeyBinary), strings are
 * length-prefixed, so the encoding is injective.
 */
std::string
jobKeyFor(const hw::Topology &topo,
          const model::TransformerModel &mdl,
          const partition::Partition &part,
          const pipeline::Schedule &sched)
{
    std::string key;
    key.reserve(192 + topo.name().size() +
                mdl.config().name.size() +
                part.stages.size() * 16);
    key.push_back('T');
    putScalar<std::uint32_t>(
        key, static_cast<std::uint32_t>(topo.name().size()));
    key += topo.name();
    putScalar<std::int32_t>(key, topo.numGpus());
    key.push_back(topo.symmetric() ? 1 : 0);
    putScalar<std::int64_t>(key, topo.gpu().memCapacity);
    putScalar<double>(key, topo.gpu().fp32Tflops);
    putScalar<double>(key, topo.gpu().fp16Tflops);
    putScalar<double>(key, topo.gpu().mfu);
    putScalar<std::int32_t>(key, topo.gpu().nvlinkPorts);
    putScalar<double>(key, topo.gpu().hbm.bytesPerSec());
    putScalar<double>(key, topo.nvlinkSpec().peak.bytesPerSec());
    putScalar<double>(key, topo.pcieSpec().peak.bytesPerSec());
    putScalar<double>(key, topo.nvmeSpec().peak.bytesPerSec());
    putScalar<std::int64_t>(key, topo.hostMemory());
    putScalar<std::int64_t>(key, topo.nvmeCapacity());
    key.push_back('m');
    const model::ModelConfig &mc = mdl.config();
    putScalar<std::uint32_t>(
        key, static_cast<std::uint32_t>(mc.name.size()));
    key += mc.name;
    putScalar<std::int32_t>(key, mc.numBlocks);
    putScalar<std::int32_t>(key, mc.hidden);
    putScalar<std::int32_t>(key, mc.heads);
    putScalar<std::int32_t>(key, mc.seqLen);
    putScalar<std::int32_t>(key, mc.vocab);
    key.push_back(static_cast<char>(mc.precision));
    key.push_back(static_cast<char>(mc.optimizer));
    putScalar<std::int32_t>(key, mdl.microbatchSize());
    key.push_back('p');
    putScalar<std::uint32_t>(
        key, static_cast<std::uint32_t>(part.stages.size()));
    for (const auto &stage : part.stages) {
        putScalar<std::uint32_t>(
            key, static_cast<std::uint32_t>(stage.firstLayer));
        putScalar<std::uint32_t>(
            key, static_cast<std::uint32_t>(stage.lastLayer));
    }
    key.push_back('s');
    key.push_back(static_cast<char>(sched.system));
    putScalar<std::int32_t>(key, sched.numStages);
    putScalar<std::int32_t>(key, sched.microbatchesPerMinibatch);
    putScalar<std::int32_t>(key, sched.numMinibatches);
    return key;
}

} // namespace

bool
TrialCache::lookup(std::uint64_t sig, const std::string &key,
                   runtime::TrainingReport *out) const
{
    std::lock_guard<std::mutex> lock(_mu);
    auto it = _map.find(sig);
    // A signature collision (equal hash, different key) counts as a
    // miss, so memoization can never change a result.
    if (it != _map.end() && it->second.key == key) {
        ++_stats.hits;
        *out = it->second.report;
        return true;
    }
    ++_stats.misses;
    return false;
}

void
TrialCache::insert(std::uint64_t sig, std::string key,
                   const runtime::TrainingReport &report)
{
    std::lock_guard<std::mutex> lock(_mu);
    // emplace keeps the first entry on a concurrent duplicate (or a
    // colliding signature): later lookups of the losing key simply
    // keep missing.
    _map.emplace(sig, Entry{std::move(key), report});
}

TrialCacheStats
TrialCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _stats;
}

std::size_t
TrialCache::size() const
{
    std::lock_guard<std::mutex> lock(_mu);
    return _map.size();
}

void
TrialCache::clear()
{
    std::lock_guard<std::mutex> lock(_mu);
    _map.clear();
}

/**
 * Compact binary memoization key, equivalent to trialKey() but ~two
 * orders of magnitude cheaper to build: the text key renders the full
 * plan through planToText() + printf-style formatting on every cache
 * probe, which made the cache a net loss on the plain plan path.
 * Every section is tagged and length-prefixed, so the encoding is
 * injective (two different inputs can never serialize to the same
 * byte string) and the collision guard in cachedRun() stays sound.
 */
std::string
SearchDriver::trialKeyBinary(const compaction::CompactionPlan &plan,
                             const runtime::ExecutorConfig &cfg,
                             std::string_view scenario_id)
{
    std::string key;
    key.reserve(64 + plan.activations.size() * 9 +
                plan.stageToGpu.size() * 4 +
                plan.offloadOptState.size() +
                plan.offloadWeightStash.size() +
                plan.spareGrants.size() * 24 + scenario_id.size());
    key.push_back('A');
    putScalar<std::uint32_t>(
        key, static_cast<std::uint32_t>(plan.activations.size()));
    for (const auto &[ref, kind] : plan.activations) {
        putScalar<std::int32_t>(key, ref.stage);
        putScalar<std::int32_t>(key, ref.layer);
        key.push_back(static_cast<char>(kind));
    }
    key.push_back('O');
    putScalar<std::uint32_t>(
        key, static_cast<std::uint32_t>(plan.offloadOptState.size()));
    for (bool b : plan.offloadOptState)
        key.push_back(b ? 1 : 0);
    key.push_back('W');
    putScalar<std::uint32_t>(
        key,
        static_cast<std::uint32_t>(plan.offloadWeightStash.size()));
    for (bool b : plan.offloadWeightStash)
        key.push_back(b ? 1 : 0);
    key.push_back('M');
    putScalar<std::uint32_t>(
        key, static_cast<std::uint32_t>(plan.stageToGpu.size()));
    for (int g : plan.stageToGpu)
        putScalar<std::int32_t>(key, g);
    key.push_back('G');
    putScalar<std::uint32_t>(
        key, static_cast<std::uint32_t>(plan.spareGrants.size()));
    for (const auto &[gpu, grants] : plan.spareGrants) {
        putScalar<std::int32_t>(key, gpu);
        putScalar<std::uint32_t>(
            key, static_cast<std::uint32_t>(grants.size()));
        for (const auto &g : grants) {
            putScalar<std::int32_t>(key, g.importerGpu);
            putScalar<std::int64_t>(key, g.budget);
        }
    }
    key.push_back(plan.d2dStriping ? 1 : 0);
    key.push_back('C');
    putScalar<double>(key, cfg.memOverheadFactor);
    putScalar<std::int32_t>(key, cfg.swapInLookahead);
    key.push_back(static_cast<char>(
        (cfg.recordLiveness ? 1 : 0) | (cfg.recordTimeline ? 2 : 0) |
        (cfg.recordMetrics ? 4 : 0) | (cfg.failFastOnOom ? 8 : 0) |
        (cfg.faultLadder ? 16 : 0)));
    putScalar<std::int32_t>(key, cfg.maxTransferRetries);
    putScalar<std::int64_t>(
        key, static_cast<std::int64_t>(cfg.retryBackoff));
    key.push_back('S');
    putScalar<std::uint32_t>(
        key, static_cast<std::uint32_t>(scenario_id.size()));
    key.append(scenario_id.data(), scenario_id.size());
    return key;
}

SearchDriver::SearchDriver(const hw::Topology &topo,
                           const model::TransformerModel &mdl,
                           const partition::Partition &part,
                           const pipeline::Schedule &sched,
                           runtime::ExecutorConfig exec_cfg,
                           util::ThreadPool &pool)
    : _topo(topo), _mdl(mdl), _part(part), _sched(sched),
      _execCfg(exec_cfg), _pool(pool),
      _workerArenas(static_cast<std::size_t>(pool.threads())),
      _jobKey(jobKeyFor(topo, mdl, part, sched))
{
    // Every trial is a scoring run, never a profiling run, and plan
    // selection must not depend on injected faults — robustness is
    // evaluated separately, on the finished plan.
    _execCfg.recordLiveness = false;
    _execCfg.failFastOnOom = true;
    _execCfg.faults = nullptr;
    // The arena pointer is per-worker state, never part of the
    // driver-wide config (and deliberately not part of the cache
    // key: it cannot change a result).
    _execCfg.arena = nullptr;
    // Thread-budget split: trial workers (the pool) and shard workers
    // (inside each multi-node trial) multiply, so cap the per-trial
    // shard workers at the hardware threads left per pool worker —
    // never oversubscribing the machine.  Purely a wall-clock knob:
    // the report is byte-identical at any value, so it stays out of
    // the trial-cache key like the arena.
    if (topo.multiNodeFabric() && _execCfg.simShards <= 0) {
        int per_trial = util::ThreadPool::hardwareThreads() /
                        std::max(1, pool.threads());
        _execCfg.simShards = std::max(
            1, std::min(topo.numNodes(), per_trial));
    }
}

void
SearchDriver::setSharedCache(TrialCache *cache)
{
    _cache = cache != nullptr ? cache : &_ownCache;
}

SearchDriver::WorkerArena &
SearchDriver::workerArena()
{
    // Each worker index is owned by exactly one thread for the
    // duration of a batch, and the arena vector itself is sized in
    // the ctor, so no synchronization is needed.  The state is built
    // once per worker and reused across all its trials: the executor
    // and the verifier only read the topology, and the executor
    // rewinds the arena engine before each run.
    auto w =
        static_cast<std::size_t>(util::ThreadPool::currentWorker());
    WorkerArena &slot = _workerArenas[w];
    if (!slot.topo)
        slot.topo = std::make_unique<hw::Topology>(_topo);
    return slot;
}

const hw::Topology &
SearchDriver::workerTopology()
{
    return *workerArena().topo;
}

std::string
SearchDriver::trialKey(const compaction::CompactionPlan &plan,
                       const runtime::ExecutorConfig &cfg,
                       std::string_view scenario_id)
{
    std::string key = compaction::planToText(plan);
    key += util::strformat(
        "@cfg overhead=%a lookahead=%d liveness=%d timeline=%d"
        " metrics=%d failfast=%d ladder=%d retries=%d backoff=%lld\n",
        cfg.memOverheadFactor, cfg.swapInLookahead,
        cfg.recordLiveness ? 1 : 0, cfg.recordTimeline ? 1 : 0,
        cfg.recordMetrics ? 1 : 0, cfg.failFastOnOom ? 1 : 0,
        cfg.faultLadder ? 1 : 0, cfg.maxTransferRetries,
        static_cast<long long>(cfg.retryBackoff));
    key += "@scenario ";
    key += scenario_id;
    key += '\n';
    return key;
}

std::uint64_t
SearchDriver::planSignature(const compaction::CompactionPlan &plan,
                            const runtime::ExecutorConfig &cfg,
                            std::string_view scenario_id)
{
    return util::fnv1a64(trialKey(plan, cfg, scenario_id));
}

std::string
SearchDriver::scenarioKey(const fault::Scenario &scenario)
{
    std::string key = util::strformat(
        "%s seed=%llu", scenario.name.c_str(),
        static_cast<unsigned long long>(scenario.seed));
    for (const auto &e : scenario.events) {
        key += util::strformat(
            " [k=%d %lld..%lld gpu=%d src=%d dst=%d f=%a p=%a"
            " b=%lld]",
            static_cast<int>(e.kind), static_cast<long long>(e.start),
            static_cast<long long>(e.end), e.gpu, e.src, e.dst,
            e.factor, e.probability, static_cast<long long>(e.bytes));
    }
    return key;
}

TrialCacheStats
SearchDriver::cacheStats() const
{
    // Per-driver view: with a shared cache attached, the cache's own
    // stats() aggregate across every driver, while these counters
    // keep PlanResult's hit/miss attribution local to this search.
    TrialCacheStats stats;
    stats.hits = _cacheHits.load(std::memory_order_relaxed);
    stats.misses = _cacheMisses.load(std::memory_order_relaxed);
    return stats;
}

std::uint64_t
SearchDriver::arenaShrinks() const
{
    std::uint64_t total = 0;
    for (const WorkerArena &wa : _workerArenas)
        total += wa.exec.shrinks;
    return total;
}

runtime::TrainingReport
SearchDriver::cachedRun(const compaction::CompactionPlan &plan,
                        const runtime::ExecutorConfig &cfg,
                        std::string_view scenario_id)
{
    // Run on this worker's arena: reused topology copy + reused DES
    // engine slabs.  The arena never enters the memo key — it cannot
    // change a result, only the allocation count.
    auto run_here = [&]() {
        WorkerArena &wa = workerArena();
        runtime::ExecutorConfig run_cfg = cfg;
        run_cfg.arena = &wa.exec;
        return runtime::runTraining(*wa.topo, _mdl, _part, _sched,
                                    plan, run_cfg);
    };
    if (!_cacheEnabled)
        return run_here();
    // The job key prefix scopes the entry to this driver's
    // (topology, model, partition, schedule), so a shared cache can
    // serve many jobs without ever exchanging entries between them.
    std::string key = _jobKey;
    key += trialKeyBinary(plan, cfg, scenario_id);
    std::uint64_t sig = util::fnv1a64(key);
    runtime::TrainingReport report;
    if (_cache->lookup(sig, key, &report)) {
        // The emulator is a pure function of (topology, job, plan,
        // cfg): the stored report is byte-identical to what a fresh
        // run would produce.
        _cacheHits.fetch_add(1, std::memory_order_relaxed);
        return report;
    }
    _cacheMisses.fetch_add(1, std::memory_order_relaxed);
    report = run_here();
    _cache->insert(sig, std::move(key), report);
    return report;
}

std::vector<TrialOutcome>
SearchDriver::evaluate(
    const std::vector<compaction::CompactionPlan> &trials)
{
    return evaluateImpl(trials, /*allow_prune=*/true, {});
}

std::vector<TrialOutcome>
SearchDriver::evaluate(
    const std::vector<compaction::CompactionPlan> &trials,
    const std::vector<double> &baselines)
{
    if (!baselines.empty() && baselines.size() != trials.size()) {
        util::panic("per-trial baselines (%zu) do not match trials"
                    " (%zu)",
                    baselines.size(), trials.size());
    }
    return evaluateImpl(trials, /*allow_prune=*/true, baselines);
}

TrialOutcome
SearchDriver::evaluateOne(const compaction::CompactionPlan &plan)
{
    // Never pruned: single-plan callers (seeding, OOM escalation,
    // re-mapping) branch on the real report — e.g. the DES's
    // time-ordered first-OOM GPU, which the analyzer cannot name.
    std::vector<compaction::CompactionPlan> one(1, plan);
    return evaluateImpl(one, /*allow_prune=*/false, {}).front();
}

std::vector<TrialOutcome>
SearchDriver::evaluateImpl(
    const std::vector<compaction::CompactionPlan> &trials,
    bool allow_prune, const std::vector<double> &baselines)
{
    const bool prune = allow_prune && _analyticPrune;
    std::vector<TrialOutcome> out(trials.size());
    _pool.parallelFor(trials.size(), [&](std::size_t i) {
        if (prune) {
            analysis::AnalysisOptions aopts;
            aopts.memOverheadFactor = _execCfg.memOverheadFactor;
            aopts.swapInLookahead = _execCfg.swapInLookahead;
            analysis::AnalysisCertificate cert = analysis::analyzePlan(
                workerTopology(), _mdl, _part, _sched, trials[i],
                aopts);
            _analyticScored.fetch_add(1, std::memory_order_relaxed);
            // Both rules reject only provably non-acceptable trials.
            // A pruned outcome is never accepted (verified stays
            // false) and an acceptable trial is never pruned, so
            // pickBest() ranks exactly the same accepted set as a
            // full evaluation — the winner is byte-identical.
            if (cert.valid && cert.provableOom) {
                out[i].pruned = true;
                out[i].report.oom = true;
                out[i].report.oomGpu = cert.oomGpu;
                _prunedOom.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            // A strategy can disable the throughput rule for its own
            // trials (baseline < 0) so its trajectory is identical
            // with pruning on or off — e.g. the annealer, whose next
            // move depends on the previous trial's report.
            const double base = baselines.empty() ? _pruneBaseline
                                                  : baselines[i];
            if (cert.valid && base >= 0.0 &&
                cert.throughputUpperBound <=
                    base * (1.0 + _pruneGain)) {
                out[i].pruned = true;
                _prunedSlow.fetch_add(1, std::memory_order_relaxed);
                return;
            }
        }
        // Per-worker topology arena: the executor and the verifier
        // read the topology heavily, and an engine must never share
        // state with a concurrent one — but trials on the same worker
        // can reuse one copy.
        out[i].report = cachedRun(trials[i], _execCfg, "");
        verify::Options opts;
        opts.memOverheadFactor = _execCfg.memOverheadFactor;
        out[i].verified =
            verify::verifyPlan(workerTopology(), _mdl, _part, _sched,
                               trials[i], opts)
                .ok();
    });
    return out;
}

PruneStats
SearchDriver::pruneStats() const
{
    PruneStats s;
    s.scored = _analyticScored.load(std::memory_order_relaxed);
    s.prunedOom = _prunedOom.load(std::memory_order_relaxed);
    s.prunedSlow = _prunedSlow.load(std::memory_order_relaxed);
    return s;
}

namespace {

/** Nearest-rank percentile of ascending @p sorted (non-empty). */
double
nearestRank(const std::vector<double> &sorted, double p)
{
    auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(p * n));
    if (rank > 0)
        --rank;
    return sorted[std::min(rank, sorted.size() - 1)];
}

} // namespace

RobustnessResult
SearchDriver::evaluateRobustness(
    const compaction::CompactionPlan &plan,
    const std::vector<fault::Scenario> &scenarios)
{
    RobustnessResult res;
    // Run the baseline through parallelFor(1, ...) rather than
    // directly: the serial fast path pins currentWorker() to 0 for
    // the body.  A direct call would inherit the caller's worker id —
    // nonzero when the caller is itself a body of an outer pool (an
    // mpress-serve request worker) — and index past _workerArenas.
    _pool.parallelFor(1, [&](std::size_t) {
        res.baseline = cachedRun(plan, _execCfg, "");
    });
    res.rows.resize(scenarios.size());
    _pool.parallelFor(scenarios.size(), [&](std::size_t i) {
        runtime::ExecutorConfig cfg = _execCfg;
        cfg.faults = &scenarios[i];
        // Score the runtime's best recovery: let the ladder absorb
        // failures instead of failing fast on the first one.
        cfg.faultLadder = true;
        cfg.failFastOnOom = true;
        RobustnessRow &row = res.rows[i];
        row.scenario = scenarios[i].name;
        // The scenario pointer cannot key the cache; its content
        // does.  Duplicate scenarios across replays memoize.
        row.report = cachedRun(plan, cfg,
                               scenarioKey(scenarios[i]));
        double base = res.baseline.samplesPerSec;
        row.throughputRatio =
            (row.report.oom || base <= 0.0)
                ? 0.0
                : row.report.samplesPerSec / base;
    });
    if (!res.rows.empty()) {
        std::vector<double> ratios;
        ratios.reserve(res.rows.size());
        for (const auto &row : res.rows)
            ratios.push_back(row.throughputRatio);
        std::sort(ratios.begin(), ratios.end());
        res.worst = ratios.front();
        res.p10 = nearestRank(ratios, 0.10);
        res.p50 = nearestRank(ratios, 0.50);
    }
    return res;
}

int
SearchDriver::pickBest(const std::vector<TrialOutcome> &outcomes,
                       double baseline_samples_per_sec,
                       double accept_gain)
{
    int best = -1;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].accepted(baseline_samples_per_sec,
                                  accept_gain))
            continue;
        if (best < 0 ||
            outcomes[i].report.samplesPerSec >
                outcomes[static_cast<std::size_t>(best)]
                    .report.samplesPerSec) {
            best = static_cast<int>(i);
        }
    }
    return best;
}

std::map<int, Bytes>
remainingGrantBudget(
    const std::map<int, std::vector<compaction::SpareGrant>> &grants,
    const std::vector<std::pair<int, Bytes>> &debits)
{
    std::map<int, Bytes> budget;
    for (const auto &[gpu, gs] : grants) {
        Bytes total = 0;
        for (const auto &g : gs)
            total += g.budget;
        budget[gpu] = total;
    }
    for (const auto &[gpu, savings] : debits) {
        auto it = budget.find(gpu);
        if (it == budget.end()) {
            // A committed flip against a GPU with no grants: stale
            // state from a re-map.  Nothing to debit.
            continue;
        }
        if (savings > it->second) {
            util::debug("grant ledger for GPU %d short by %lld bytes"
                        " (stale debit after re-map); clamping",
                        gpu,
                        static_cast<long long>(savings - it->second));
            it->second = 0;
        } else {
            it->second -= savings;
        }
    }
    return budget;
}

std::vector<std::size_t>
admitFlipBatch(const std::vector<FlipCandidate> &flippable,
               std::map<int, Bytes> &budget, int max_flips)
{
    std::vector<std::size_t> admitted;
    for (std::size_t i = 0; i < flippable.size(); ++i) {
        if (static_cast<int>(admitted.size()) >= max_flips)
            break;
        const FlipCandidate &c = flippable[i];
        auto it = budget.find(c.gpu);
        // Gate and ledger agree: a flip is admitted only when the
        // grants can absorb its full savings (every in-flight
        // instance), and exactly that amount is debited.  Partial
        // admission would let the runtime silently keep instances
        // resident (d2dOverflow) while the ledger pretended the
        // bytes were exported.
        if (it == budget.end() || it->second < c.savings)
            continue;
        it->second -= c.savings;
        if (it->second < 0) {
            util::panic("grant ledger went negative on GPU %d",
                        c.gpu);
        }
        admitted.push_back(i);
    }
    return admitted;
}

} // namespace planner
} // namespace mpress
