#include "planner/search.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace mpress {
namespace planner {

using util::Bytes;

SearchDriver::SearchDriver(const hw::Topology &topo,
                           const model::TransformerModel &mdl,
                           const partition::Partition &part,
                           const pipeline::Schedule &sched,
                           runtime::ExecutorConfig exec_cfg,
                           util::ThreadPool &pool)
    : _topo(topo), _mdl(mdl), _part(part), _sched(sched),
      _execCfg(exec_cfg), _pool(pool)
{
    // Every trial is a scoring run, never a profiling run, and plan
    // selection must not depend on injected faults — robustness is
    // evaluated separately, on the finished plan.
    _execCfg.recordLiveness = false;
    _execCfg.failFastOnOom = true;
    _execCfg.faults = nullptr;
}

std::vector<TrialOutcome>
SearchDriver::evaluate(
    const std::vector<compaction::CompactionPlan> &trials)
{
    std::vector<TrialOutcome> out(trials.size());
    _pool.parallelFor(trials.size(), [&](std::size_t i) {
        // Own hardware description per trial: the executor and the
        // verifier read the topology heavily, and an engine must
        // never share state with a concurrent one.
        hw::Topology topo = _topo;
        out[i].report = runtime::runTraining(
            topo, _mdl, _part, _sched, trials[i], _execCfg);
        verify::Options opts;
        opts.memOverheadFactor = _execCfg.memOverheadFactor;
        out[i].verified = verify::verifyPlan(topo, _mdl, _part,
                                             _sched, trials[i], opts)
                              .ok();
    });
    return out;
}

TrialOutcome
SearchDriver::evaluateOne(const compaction::CompactionPlan &plan)
{
    std::vector<compaction::CompactionPlan> one(1, plan);
    return evaluate(one).front();
}

namespace {

/** Nearest-rank percentile of ascending @p sorted (non-empty). */
double
nearestRank(const std::vector<double> &sorted, double p)
{
    auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(p * n));
    if (rank > 0)
        --rank;
    return sorted[std::min(rank, sorted.size() - 1)];
}

} // namespace

RobustnessResult
SearchDriver::evaluateRobustness(
    const compaction::CompactionPlan &plan,
    const std::vector<fault::Scenario> &scenarios)
{
    RobustnessResult res;
    {
        hw::Topology topo = _topo;
        res.baseline = runtime::runTraining(topo, _mdl, _part,
                                            _sched, plan, _execCfg);
    }
    res.rows.resize(scenarios.size());
    _pool.parallelFor(scenarios.size(), [&](std::size_t i) {
        hw::Topology topo = _topo;
        runtime::ExecutorConfig cfg = _execCfg;
        cfg.faults = &scenarios[i];
        // Score the runtime's best recovery: let the ladder absorb
        // failures instead of failing fast on the first one.
        cfg.faultLadder = true;
        cfg.failFastOnOom = true;
        RobustnessRow &row = res.rows[i];
        row.scenario = scenarios[i].name;
        row.report = runtime::runTraining(topo, _mdl, _part, _sched,
                                          plan, cfg);
        double base = res.baseline.samplesPerSec;
        row.throughputRatio =
            (row.report.oom || base <= 0.0)
                ? 0.0
                : row.report.samplesPerSec / base;
    });
    if (!res.rows.empty()) {
        std::vector<double> ratios;
        ratios.reserve(res.rows.size());
        for (const auto &row : res.rows)
            ratios.push_back(row.throughputRatio);
        std::sort(ratios.begin(), ratios.end());
        res.worst = ratios.front();
        res.p10 = nearestRank(ratios, 0.10);
        res.p50 = nearestRank(ratios, 0.50);
    }
    return res;
}

int
SearchDriver::pickBest(const std::vector<TrialOutcome> &outcomes,
                       double baseline_samples_per_sec,
                       double accept_gain)
{
    int best = -1;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].accepted(baseline_samples_per_sec,
                                  accept_gain))
            continue;
        if (best < 0 ||
            outcomes[i].report.samplesPerSec >
                outcomes[static_cast<std::size_t>(best)]
                    .report.samplesPerSec) {
            best = static_cast<int>(i);
        }
    }
    return best;
}

std::map<int, Bytes>
remainingGrantBudget(
    const std::map<int, std::vector<compaction::SpareGrant>> &grants,
    const std::vector<std::pair<int, Bytes>> &debits)
{
    std::map<int, Bytes> budget;
    for (const auto &[gpu, gs] : grants) {
        Bytes total = 0;
        for (const auto &g : gs)
            total += g.budget;
        budget[gpu] = total;
    }
    for (const auto &[gpu, savings] : debits) {
        auto it = budget.find(gpu);
        if (it == budget.end()) {
            // A committed flip against a GPU with no grants: stale
            // state from a re-map.  Nothing to debit.
            continue;
        }
        if (savings > it->second) {
            util::debug("grant ledger for GPU %d short by %lld bytes"
                        " (stale debit after re-map); clamping",
                        gpu,
                        static_cast<long long>(savings - it->second));
            it->second = 0;
        } else {
            it->second -= savings;
        }
    }
    return budget;
}

std::vector<std::size_t>
admitFlipBatch(const std::vector<FlipCandidate> &flippable,
               std::map<int, Bytes> &budget, int max_flips)
{
    std::vector<std::size_t> admitted;
    for (std::size_t i = 0; i < flippable.size(); ++i) {
        if (static_cast<int>(admitted.size()) >= max_flips)
            break;
        const FlipCandidate &c = flippable[i];
        auto it = budget.find(c.gpu);
        // Gate and ledger agree: a flip is admitted only when the
        // grants can absorb its full savings (every in-flight
        // instance), and exactly that amount is debited.  Partial
        // admission would let the runtime silently keep instances
        // resident (d2dOverflow) while the ledger pretended the
        // bytes were exported.
        if (it == budget.end() || it->second < c.savings)
            continue;
        it->second -= c.savings;
        if (it->second < 0) {
            util::panic("grant ledger went negative on GPU %d",
                        c.gpu);
        }
        admitted.push_back(i);
    }
    return admitted;
}

} // namespace planner
} // namespace mpress
