#include "planner/portfolio.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <queue>
#include <string>
#include <unordered_set>
#include <utility>

#include "analysis/analyzer.hh"
#include "util/random.hh"

namespace mpress {
namespace planner {

using compaction::CompactionPlan;
using compaction::Kind;

compaction::CompactionPlan
materializePlan(const std::vector<std::vector<Candidate>> &per_stage,
                const std::vector<bool> &offload_opt,
                const std::vector<bool> &offload_stash,
                const MappingResult &mapping, bool d2d_striping)
{
    CompactionPlan plan;
    plan.d2dStriping = d2d_striping;
    plan.offloadOptState.assign(offload_opt.begin(),
                                offload_opt.end());
    plan.offloadWeightStash.assign(offload_stash.begin(),
                                   offload_stash.end());
    plan.stageToGpu = mapping.stageToGpu;
    plan.spareGrants = mapping.grants;
    for (const auto &stage : per_stage) {
        for (const auto &c : stage) {
            if (c.chosen != Kind::None)
                plan.activations[c.ref] = c.chosen;
        }
    }
    return plan;
}

compaction::CompactionPlan
materializePlan(const PlanState &state, const MappingResult &mapping,
                bool d2d_striping)
{
    return materializePlan(state.candidates, state.offloadOpt,
                           state.offloadStash, mapping, d2d_striping);
}

namespace {

/** Best verified throughput any strategy has reached, published
 *  between wavefront rounds.  Atomic so a strategy (or a future
 *  in-evaluation callback) can read it without a lock; the value is
 *  monotone non-decreasing and independent of prune/cache/thread
 *  settings, so reads stay deterministic. */
struct SharedBest
{
    std::atomic<double> best{0.0};

    void
    publish(double score)
    {
        double cur = best.load(std::memory_order_relaxed);
        while (score > cur &&
               !best.compare_exchange_weak(
                   cur, score, std::memory_order_relaxed)) {
        }
    }

    double
    score() const
    {
        return best.load(std::memory_order_relaxed);
    }
};

/** Everything a strategy borrows for the duration of the race. */
struct RaceCtx
{
    SearchDriver &driver;
    const hw::Topology &topo;
    const model::TransformerModel &mdl;
    const partition::Partition &part;
    const pipeline::Schedule &sched;
    const MappingResult &mapping;
    const PlannerConfig &cfg;
    SharedBest &shared;

    int
    gpuOf(int stage) const
    {
        return mapping.stageToGpu.empty()
                   ? stage
                   : mapping.stageToGpu[static_cast<std::size_t>(
                         stage)];
    }
};

/**
 * One racing strategy.  The race loop calls propose() /
 * baselines() / observe() strictly in that order once per round;
 * an empty propose() retires the strategy.  Each strategy tracks its
 * own best verified plan, seeded with the race's seed plan so a
 * strategy that never improves still offers a valid entry.
 */
class Strategy
{
  public:
    Strategy(std::string name, const RaceCtx &ctx,
             const PlanState &seed, const CompactionPlan &seed_plan,
             const runtime::TrainingReport &seed_report)
        : _ctx(ctx), _name(std::move(name)), _st(seed),
          _bestPlan(seed_plan), _bestReport(seed_report),
          _bestScore(seed_report.samplesPerSec)
    {
    }
    virtual ~Strategy() = default;
    Strategy(const Strategy &) = delete;
    Strategy &operator=(const Strategy &) = delete;

    /** Next wavefront slice; empty retires the strategy. */
    virtual std::vector<CompactionPlan> propose() = 0;

    /** Per-trial analytic prune baselines for the last propose().
     *  Each mirrors the strategy's own acceptance threshold (or
     *  disables the throughput rule with -1), which keeps the
     *  strategy's trajectory identical with the prune tier on or
     *  off. */
    virtual std::vector<double> baselines() const = 0;

    /** Outcomes of this strategy's last slice, in propose() order. */
    virtual void observe(const std::vector<TrialOutcome> &outcomes)
        = 0;

    const std::string &name() const { return _name; }
    double bestScore() const { return _bestScore; }
    const CompactionPlan &bestPlan() const { return _bestPlan; }
    const runtime::TrainingReport &bestReport() const
    {
        return _bestReport;
    }
    std::uint64_t proposed() const { return _proposed; }
    std::uint64_t committed() const { return _committed; }

  protected:
    /** Record @p outcome's plan as the strategy's new best. */
    void
    commitBest(CompactionPlan plan, const TrialOutcome &outcome)
    {
        _bestPlan = std::move(plan);
        _bestReport = outcome.report;
        _bestScore = outcome.report.samplesPerSec;
        ++_committed;
    }

    const RaceCtx &_ctx;
    std::string _name;
    PlanState _st;
    CompactionPlan _bestPlan;
    runtime::TrainingReport _bestReport;
    double _bestScore;
    std::uint64_t _proposed = 0;
    std::uint64_t _committed = 0;
    std::size_t _lastCount = 0;
};

/**
 * The classic greedy refinement, restructured into wavefronts: the
 * D2D flip ladder (stage 5 of planMPress), then the three coarse
 * variants (stage 6), then the fine-tune un-swap ladder (stage 7).
 * Each round proposes exactly the trial batch the sequential loop
 * would have evaluated next, so running this strategy alone yields
 * the sequential planner's plan.
 */
class GreedyWavefront final : public Strategy
{
    enum class Phase { Flip, Coarse, Fine, Done };

  public:
    GreedyWavefront(const RaceCtx &ctx, const PlanState &seed,
                    const CompactionPlan &seed_plan,
                    const runtime::TrainingReport &seed_report)
        : Strategy("greedy-wavefront", ctx, seed, seed_plan,
                   seed_report),
          _cur(seed_report)
    {
    }

    std::vector<CompactionPlan>
    propose() override
    {
        std::vector<CompactionPlan> trials;
        while (trials.empty() && _phase != Phase::Done) {
            switch (_phase) {
              case Phase::Flip:
                trials = proposeFlip();
                break;
              case Phase::Coarse:
                trials = proposeCoarse();
                break;
              case Phase::Fine:
                trials = proposeFine();
                break;
              case Phase::Done:
                break;
            }
        }
        _lastCount = trials.size();
        _proposed += trials.size();
        return trials;
    }

    std::vector<double>
    baselines() const override
    {
        // Mirrors the acceptance threshold observe() applies, so the
        // analytic tier can only drop trials pickBest() would reject.
        return std::vector<double>(_lastCount, _cur.samplesPerSec);
    }

    void
    observe(const std::vector<TrialOutcome> &outcomes) override
    {
        switch (_phase) {
          case Phase::Flip:
            observeFlip(outcomes);
            break;
          case Phase::Coarse:
            observeCoarse(outcomes);
            break;
          case Phase::Fine:
            observeFine(outcomes);
            break;
          case Phase::Done:
            break;
        }
    }

  private:
    /** Flip ladder: the costliest surviving assignments become D2D
     *  swap candidates, drawn round-robin across stages; trials are
     *  the admitted batch and its halvings. */
    std::vector<CompactionPlan>
    proposeFlip()
    {
        if (_iter >= _ctx.cfg.maxIterations) {
            _phase = Phase::Coarse;
            return {};
        }
        // Remaining grant budget per exporter GPU: total grants minus
        // the savings of flips committed in earlier rounds — the same
        // quantity the admission gate checks and debits.
        std::vector<std::pair<int, Bytes>> debits;
        for (const auto &stage_cands : _st.candidates) {
            for (const auto &c : stage_cands) {
                if (c.chosen == Kind::D2dSwap) {
                    debits.emplace_back(_ctx.gpuOf(c.ref.stage),
                                        c.savings);
                }
            }
        }
        std::map<int, Bytes> budget =
            remainingGrantBudget(_ctx.mapping.grants, debits);

        // Throughput follows the slowest stage, so the batch is drawn
        // round-robin across stages, costliest first within each.
        std::vector<std::vector<Candidate *>> per_stage_flips(
            _st.candidates.size());
        for (std::size_t s = 0; s < _st.candidates.size(); ++s) {
            for (auto &c : _st.candidates[s]) {
                if (c.chosen == Kind::Recompute ||
                    c.chosen == Kind::GpuCpuSwap)
                    per_stage_flips[s].push_back(&c);
            }
            std::stable_sort(
                per_stage_flips[s].begin(), per_stage_flips[s].end(),
                [](const Candidate *a, const Candidate *b) {
                    if (a->chosenExtra() != b->chosenExtra())
                        return a->chosenExtra() > b->chosenExtra();
                    return a->savings > b->savings;
                });
        }
        std::vector<Candidate *> flippable;
        for (std::size_t round = 0;; ++round) {
            bool any = false;
            for (const auto &stage_flips : per_stage_flips) {
                if (round < stage_flips.size()) {
                    flippable.push_back(stage_flips[round]);
                    any = true;
                }
            }
            if (!any)
                break;
        }

        std::vector<FlipCandidate> gate_view;
        gate_view.reserve(flippable.size());
        for (const Candidate *c : flippable) {
            gate_view.push_back({_ctx.gpuOf(c->ref.stage), c->stash,
                                 c->savings});
        }

        // Trial ladder: the full batch and its halvings.  Larger
        // batches come first so the fixed tie-break prefers more D2D
        // coverage on equal measured throughput.
        _pendingFlips.clear();
        std::vector<CompactionPlan> trials;
        for (int batch = _ctx.cfg.d2dBatchPerStep; batch >= 1;
             batch /= 2) {
            std::map<int, Bytes> scratch = budget;
            auto admitted = admitFlipBatch(gate_view, scratch, batch);
            if (admitted.empty())
                break;
            std::vector<Candidate *> flips;
            std::vector<Kind> prior;
            for (std::size_t idx : admitted) {
                flips.push_back(flippable[idx]);
                prior.push_back(flippable[idx]->chosen);
                flippable[idx]->chosen = Kind::D2dSwap;
            }
            trials.push_back(materializePlan(
                _st, _ctx.mapping, _ctx.cfg.d2dStriping));
            for (std::size_t k = 0; k < flips.size(); ++k)
                flips[k]->chosen = prior[k];
            _pendingFlips.push_back(std::move(flips));
        }
        if (trials.empty())
            _phase = Phase::Coarse;
        return trials;
    }

    void
    observeFlip(const std::vector<TrialOutcome> &outcomes)
    {
        int best = SearchDriver::pickBest(
            outcomes, _cur.samplesPerSec, _ctx.cfg.acceptGain);
        if (best < 0) {
            _phase = Phase::Coarse;
            return;
        }
        auto b = static_cast<std::size_t>(best);
        for (Candidate *c : _pendingFlips[b])
            c->chosen = Kind::D2dSwap;
        _cur = outcomes[b].report;
        commitBest(materializePlan(_st, _ctx.mapping,
                                   _ctx.cfg.d2dStriping),
                   outcomes[b]);
        if (++_iter >= _ctx.cfg.maxIterations)
            _phase = Phase::Coarse;
    }

    /** The three coarse variants (joint flips), scored as one batch:
     *  (a) all swap classes recomputed, (b) optimizer offload
     *  retired, (c) both. */
    std::vector<CompactionPlan>
    proposeCoarse()
    {
        auto apply_variant = [&](bool rc_max, bool keep_offload)
            -> CompactionPlan {
            for (auto &stage_cands : _st.candidates) {
                for (auto &c : stage_cands) {
                    if (rc_max && c.chosen == Kind::GpuCpuSwap)
                        c.chosen = Kind::Recompute;
                }
            }
            std::vector<bool> opt =
                keep_offload
                    ? _st.offloadOpt
                    : std::vector<bool>(_st.offloadOpt.size(),
                                        false);
            return materializePlan(_st.candidates, opt,
                                   _st.offloadStash, _ctx.mapping,
                                   _ctx.cfg.d2dStriping);
        };
        const auto seed_kinds = snapshot();
        _coarseKinds.clear();
        std::vector<CompactionPlan> trials;
        for (const auto &v : kCoarseVariants) {
            restore(seed_kinds);
            trials.push_back(apply_variant(v.rcMax, v.keepOffload));
            _coarseKinds.push_back(snapshot());
        }
        restore(seed_kinds);
        return trials;
    }

    void
    observeCoarse(const std::vector<TrialOutcome> &outcomes)
    {
        int best = SearchDriver::pickBest(
            outcomes, _cur.samplesPerSec, _ctx.cfg.acceptGain);
        if (best >= 0) {
            auto b = static_cast<std::size_t>(best);
            restore(_coarseKinds[b]);
            if (!kCoarseVariants[b].keepOffload)
                _st.offloadOpt.assign(_st.offloadOpt.size(), false);
            _cur = outcomes[b].report;
            commitBest(materializePlan(_st, _ctx.mapping,
                                       _ctx.cfg.d2dStriping),
                       outcomes[b]);
        }
        _phase = Phase::Fine;
        _iter = 0;
    }

    /** Fine-tune ladder: un-swap the biggest GPU-CPU classes back to
     *  recomputation, prefix by prefix. */
    std::vector<CompactionPlan>
    proposeFine()
    {
        if (_iter >= _ctx.cfg.maxIterations) {
            _phase = Phase::Done;
            return {};
        }
        std::vector<Candidate *> swaps;
        for (auto &stage_cands : _st.candidates) {
            for (auto &c : stage_cands) {
                if (c.chosen == Kind::GpuCpuSwap)
                    swaps.push_back(&c);
            }
        }
        if (swaps.empty()) {
            _phase = Phase::Done;
            return {};
        }
        std::stable_sort(swaps.begin(), swaps.end(),
                         [](const Candidate *a, const Candidate *b) {
                             return a->savings > b->savings;
                         });
        _pendingFlips.clear();
        std::vector<CompactionPlan> trials;
        for (int batch = _ctx.cfg.d2dBatchPerStep; batch >= 1;
             batch /= 2) {
            std::size_t take = std::min(
                static_cast<std::size_t>(batch), swaps.size());
            std::vector<Candidate *> flips(
                swaps.begin(),
                swaps.begin() + static_cast<long>(take));
            for (Candidate *c : flips)
                c->chosen = Kind::Recompute;
            trials.push_back(materializePlan(
                _st, _ctx.mapping, _ctx.cfg.d2dStriping));
            for (Candidate *c : flips)
                c->chosen = Kind::GpuCpuSwap;
            _pendingFlips.push_back(std::move(flips));
        }
        return trials;
    }

    void
    observeFine(const std::vector<TrialOutcome> &outcomes)
    {
        int best = SearchDriver::pickBest(
            outcomes, _cur.samplesPerSec, _ctx.cfg.acceptGain);
        if (best < 0) {
            _phase = Phase::Done;
            return;
        }
        auto b = static_cast<std::size_t>(best);
        for (Candidate *c : _pendingFlips[b])
            c->chosen = Kind::Recompute;
        _cur = outcomes[b].report;
        commitBest(materializePlan(_st, _ctx.mapping,
                                   _ctx.cfg.d2dStriping),
                   outcomes[b]);
        ++_iter;
    }

    std::vector<Kind>
    snapshot() const
    {
        std::vector<Kind> kinds;
        for (const auto &stage_cands : _st.candidates)
            for (const auto &c : stage_cands)
                kinds.push_back(c.chosen);
        return kinds;
    }

    void
    restore(const std::vector<Kind> &kinds)
    {
        std::size_t i = 0;
        for (auto &stage_cands : _st.candidates)
            for (auto &c : stage_cands)
                c.chosen = kinds[i++];
    }

    struct Variant
    {
        bool rcMax;
        bool keepOffload;
    };
    static constexpr Variant kCoarseVariants[3] = {
        {true, true}, {false, false}, {true, false}};

    Phase _phase = Phase::Flip;
    int _iter = 0;
    runtime::TrainingReport _cur;
    std::vector<std::vector<Candidate *>> _pendingFlips;
    std::vector<std::vector<Kind>> _coarseKinds;
};

/**
 * Fixed-seed simulated annealing over budget-legal plan mutations.
 * Where the greedy ladder only moves along its cost ordering, the
 * walker can un-offload an optimizer, trade a D2D grant between
 * stages, or compact a class the seed left resident — moves the
 * ladder structurally cannot reach — and may accept a measured
 * regression (Metropolis) to get there.
 *
 * Its trials ride the wavefront with the throughput-prune rule
 * disabled (baseline -1): the walker's next move depends on the
 * previous trial's measured report, so pruning a merely-slow trial
 * would fork its trajectory between prune-on and prune-off runs.
 * The provable-OOM rule still applies and is trajectory-safe — the
 * rule is sound, so a pruned trial's real run would have reported
 * OOM too, and the walker rejects OOM either way.
 */
class SimulatedAnneal final : public Strategy
{
  public:
    SimulatedAnneal(const RaceCtx &ctx, const PlanState &seed,
                    const CompactionPlan &seed_plan,
                    const runtime::TrainingReport &seed_report)
        : Strategy("simulated-anneal", ctx, seed, seed_plan,
                   seed_report),
          _rng(util::fnv1a64("mpress.portfolio.anneal")),
          _walkerScore(seed_report.samplesPerSec),
          _temp(seed_report.samplesPerSec * 0.05),
          _maxRounds(2 * ctx.cfg.maxIterations)
    {
    }

    std::vector<CompactionPlan>
    propose() override
    {
        if (_round >= _maxRounds) {
            _lastCount = 0;
            return {};
        }
        ++_round;
        _pending.clear();
        std::vector<CompactionPlan> trials;
        for (int k = 0; k < kWidth; ++k) {
            PlanState s = _st;
            auto muts =
                1 + static_cast<int>(_rng.nextBounded(2));
            bool changed = false;
            for (int m = 0; m < muts; ++m)
                changed |= mutate(s);
            if (!changed)
                continue;
            trials.push_back(materializePlan(
                s, _ctx.mapping, _ctx.cfg.d2dStriping));
            _pending.push_back(std::move(s));
        }
        _lastCount = trials.size();
        _proposed += trials.size();
        return trials;
    }

    std::vector<double>
    baselines() const override
    {
        return std::vector<double>(_lastCount, -1.0);
    }

    void
    observe(const std::vector<TrialOutcome> &outcomes) override
    {
        int adopt = -1;
        double adopt_score = 0.0;
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            const TrialOutcome &o = outcomes[i];
            // With the throughput rule disabled, pruned implies a
            // provable OOM — the same rejection a real run earns.
            if (o.report.oom || !o.verified)
                continue;
            double sc = o.report.samplesPerSec;
            bool accept = sc > _walkerScore;
            if (!accept) {
                double t = std::max(_temp, 1e-9);
                accept = _rng.nextDouble() <
                         std::exp((sc - _walkerScore) / t);
            }
            if (accept && (adopt < 0 || sc > adopt_score)) {
                adopt = static_cast<int>(i);
                adopt_score = sc;
            }
            if (o.accepted(_bestScore, _ctx.cfg.acceptGain)) {
                commitBest(materializePlan(_pending[i], _ctx.mapping,
                                           _ctx.cfg.d2dStriping),
                           o);
            }
        }
        if (adopt >= 0) {
            _st = std::move(_pending[static_cast<std::size_t>(adopt)]);
            _walkerScore = adopt_score;
        }
        _temp *= 0.85;
    }

  private:
    /** Apply one random legal mutation to @p s; false if none of the
     *  bounded draws produced a change. */
    bool
    mutate(PlanState &s)
    {
        for (int attempt = 0; attempt < 8; ++attempt) {
            switch (_rng.nextBounded(5)) {
              case 0:
                if (tryFlipToD2d(s))
                    return true;
                break;
              case 1:
                if (tryRetireD2d(s))
                    return true;
                break;
              case 2:
                if (tryToggleClass(s))
                    return true;
                break;
              case 3: {
                auto st = _rng.nextBounded(s.offloadOpt.size());
                s.offloadOpt[st] = !s.offloadOpt[st];
                return true;
              }
              default: {
                auto st = _rng.nextBounded(s.offloadStash.size());
                if (s.offloadStash[st]) {
                    s.offloadStash[st] = false;
                    return true;
                }
                if (_ctx.sched.weightVersions(
                        static_cast<int>(st)) > 2) {
                    s.offloadStash[st] = true;
                    return true;
                }
                break;
              }
            }
        }
        return false;
    }

    bool
    tryFlipToD2d(PlanState &s)
    {
        std::vector<std::pair<int, Bytes>> debits;
        for (const auto &stage_cands : s.candidates) {
            for (const auto &c : stage_cands) {
                if (c.chosen == Kind::D2dSwap) {
                    debits.emplace_back(_ctx.gpuOf(c.ref.stage),
                                        c.savings);
                }
            }
        }
        std::map<int, Bytes> budget =
            remainingGrantBudget(_ctx.mapping.grants, debits);
        for (int attempt = 0; attempt < 8; ++attempt) {
            auto &sc =
                s.candidates[_rng.nextBounded(s.candidates.size())];
            if (sc.empty())
                continue;
            Candidate &c = sc[_rng.nextBounded(sc.size())];
            if (c.chosen == Kind::D2dSwap)
                continue;
            auto it = budget.find(_ctx.gpuOf(c.ref.stage));
            if (it == budget.end() || it->second < c.savings)
                continue;
            c.chosen = Kind::D2dSwap;
            return true;
        }
        return false;
    }

    bool
    tryRetireD2d(PlanState &s)
    {
        std::vector<Candidate *> d2d;
        for (auto &stage_cands : s.candidates)
            for (auto &c : stage_cands)
                if (c.chosen == Kind::D2dSwap)
                    d2d.push_back(&c);
        if (d2d.empty())
            return false;
        d2d[_rng.nextBounded(d2d.size())]->chosen = Kind::Recompute;
        return true;
    }

    bool
    tryToggleClass(PlanState &s)
    {
        for (int attempt = 0; attempt < 8; ++attempt) {
            auto &sc =
                s.candidates[_rng.nextBounded(s.candidates.size())];
            if (sc.empty())
                continue;
            Candidate &c = sc[_rng.nextBounded(sc.size())];
            switch (c.chosen) {
              case Kind::Recompute:
                c.chosen = Kind::GpuCpuSwap;
                return true;
              case Kind::GpuCpuSwap:
                c.chosen = Kind::Recompute;
                return true;
              case Kind::None:
                c.chosen = Kind::Recompute;
                return true;
              default:
                continue;
            }
        }
        return false;
    }

    static constexpr int kWidth = 4;

    util::SplitMix64 _rng;
    double _walkerScore;
    double _temp;
    int _round = 0;
    const int _maxRounds;
    std::vector<PlanState> _pending;
};

/**
 * Analysis-guided best-first search: neighbor states are priced by
 * the static analyzer's certificate (microseconds per plan) and only
 * the frontier's highest throughput-upper-bound nodes spend an
 * emulated iteration.  Certificates also prune for free: a neighbor
 * the analyzer proves OOM is never pushed, and when the frontier's
 * best bound cannot beat the race's shared best-so-far score, the
 * whole frontier is provably beaten and the strategy retires.
 */
class BestFirst final : public Strategy
{
  public:
    BestFirst(const RaceCtx &ctx, const PlanState &seed,
              const CompactionPlan &seed_plan,
              const runtime::TrainingReport &seed_report)
        : Strategy("best-first", ctx, seed, seed_plan, seed_report),
          _maxRounds(2 * ctx.cfg.maxIterations)
    {
        expandFrom(_st);
    }

    std::vector<CompactionPlan>
    propose() override
    {
        _lastCount = 0;
        if (_round >= _maxRounds)
            return {};
        ++_round;
        _pending.clear();
        std::vector<CompactionPlan> trials;
        const double floor =
            _ctx.shared.score() * (1.0 + _ctx.cfg.acceptGain);
        while (static_cast<int>(trials.size()) < kWidth &&
               !_frontier.empty()) {
            if (_frontier.top().ub <= floor) {
                // Max-heap: every remaining node is bounded below
                // the shared best too — the certificate tier has
                // disproved the entire frontier.
                _frontier = {};
                break;
            }
            Node n = _frontier.top();
            _frontier.pop();
            trials.push_back(materializePlan(
                n.state, _ctx.mapping, _ctx.cfg.d2dStriping));
            _pending.push_back(std::move(n.state));
        }
        _lastCount = trials.size();
        _proposed += trials.size();
        return trials;
    }

    std::vector<double>
    baselines() const override
    {
        // Own acceptance threshold: pruned <=> provably unable to
        // improve this strategy's best, the exact trials observe()
        // would reject — so the explored graph is prune-invariant.
        return std::vector<double>(_lastCount, _bestScore);
    }

    void
    observe(const std::vector<TrialOutcome> &outcomes) override
    {
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            const TrialOutcome &o = outcomes[i];
            if (!o.accepted(_bestScore, _ctx.cfg.acceptGain))
                continue;
            commitBest(materializePlan(_pending[i], _ctx.mapping,
                                       _ctx.cfg.d2dStriping),
                       o);
            expandFrom(_pending[i]);
        }
    }

  private:
    struct Node
    {
        double ub = 0.0;
        std::uint64_t seq = 0;  ///< insertion order (tie-break)
        PlanState state;
    };
    struct NodeLess
    {
        bool
        operator()(const Node &a, const Node &b) const
        {
            if (a.ub != b.ub)
                return a.ub < b.ub;
            return a.seq > b.seq;  // earlier push wins ties
        }
    };

    /** Push @p state's unseen, not-provably-OOM neighbors, priced by
     *  their certificate's throughput upper bound.  Neighbor moves
     *  are per stage, in stage order: flip the costliest non-D2D
     *  class to D2D (budget permitting), retire the optimizer
     *  offload, recompute every GPU-CPU-swapped class. */
    void
    expandFrom(const PlanState &base)
    {
        std::vector<std::pair<int, Bytes>> debits;
        for (const auto &stage_cands : base.candidates) {
            for (const auto &c : stage_cands) {
                if (c.chosen == Kind::D2dSwap) {
                    debits.emplace_back(_ctx.gpuOf(c.ref.stage),
                                        c.savings);
                }
            }
        }
        std::map<int, Bytes> budget =
            remainingGrantBudget(_ctx.mapping.grants, debits);

        for (std::size_t s = 0; s < base.candidates.size(); ++s) {
            // Costliest surviving class -> D2D.
            const Candidate *pick = nullptr;
            for (const auto &c : base.candidates[s]) {
                if (c.chosen != Kind::Recompute &&
                    c.chosen != Kind::GpuCpuSwap)
                    continue;
                if (!pick ||
                    c.chosenExtra() > pick->chosenExtra() ||
                    (c.chosenExtra() == pick->chosenExtra() &&
                     c.savings > pick->savings))
                    pick = &c;
            }
            if (pick) {
                auto it = budget.find(
                    _ctx.gpuOf(static_cast<int>(s)));
                if (it != budget.end() &&
                    it->second >= pick->savings) {
                    PlanState next = base;
                    next.candidates[s][static_cast<std::size_t>(
                                           pick -
                                           base.candidates[s].data())]
                        .chosen = Kind::D2dSwap;
                    push(std::move(next));
                }
            }
            // Retire the optimizer offload.
            if (base.offloadOpt[s]) {
                PlanState next = base;
                next.offloadOpt[s] = false;
                push(std::move(next));
            }
            // Recompute every swapped class on the stage.
            bool any_swap = false;
            for (const auto &c : base.candidates[s])
                any_swap |= c.chosen == Kind::GpuCpuSwap;
            if (any_swap) {
                PlanState next = base;
                for (auto &c : next.candidates[s])
                    if (c.chosen == Kind::GpuCpuSwap)
                        c.chosen = Kind::Recompute;
                push(std::move(next));
            }
        }
    }

    void
    push(PlanState state)
    {
        CompactionPlan plan = materializePlan(
            state, _ctx.mapping, _ctx.cfg.d2dStriping);
        std::string key = SearchDriver::trialKeyBinary(
            plan, _ctx.driver.trialConfig(), "");
        if (!_seen.insert(std::move(key)).second)
            return;
        analysis::AnalysisOptions aopts;
        aopts.memOverheadFactor =
            _ctx.driver.trialConfig().memOverheadFactor;
        aopts.swapInLookahead =
            _ctx.driver.trialConfig().swapInLookahead;
        analysis::AnalysisCertificate cert = analysis::analyzePlan(
            _ctx.topo, _ctx.mdl, _ctx.part, _ctx.sched, plan, aopts);
        if (!cert.valid || cert.provableOom)
            return;
        _frontier.push(
            {cert.throughputUpperBound, _seq++, std::move(state)});
    }

    static constexpr int kWidth = 4;

    std::priority_queue<Node, std::vector<Node>, NodeLess> _frontier;
    std::unordered_set<std::string> _seen;
    std::uint64_t _seq = 0;
    int _round = 0;
    const int _maxRounds;
    std::vector<PlanState> _pending;
};

} // namespace

RaceResult
racePortfolio(SearchDriver &driver, const hw::Topology &topo,
              const model::TransformerModel &mdl,
              const partition::Partition &part,
              const pipeline::Schedule &sched,
              const MappingResult &mapping, const PlannerConfig &cfg,
              const PlanState &seed_state,
              const compaction::CompactionPlan &seed_plan,
              const runtime::TrainingReport &seed_report)
{
    // Strategies carry their own acceptance thresholds per trial; the
    // driver-wide prune baseline stays disabled (its gain still feeds
    // the throughput rule).
    driver.setPruneBaseline(-1.0, cfg.acceptGain);

    SharedBest shared;
    shared.publish(seed_report.samplesPerSec);
    RaceCtx ctx{driver, topo,    mdl, part,
                sched,  mapping, cfg, shared};

    std::vector<std::unique_ptr<Strategy>> strategies;
    strategies.push_back(std::make_unique<GreedyWavefront>(
        ctx, seed_state, seed_plan, seed_report));
    if (cfg.portfolio) {
        strategies.push_back(std::make_unique<SimulatedAnneal>(
            ctx, seed_state, seed_plan, seed_report));
        strategies.push_back(std::make_unique<BestFirst>(
            ctx, seed_state, seed_plan, seed_report));
    }

    std::vector<bool> active(strategies.size(), true);
    const auto start = std::chrono::steady_clock::now();
    auto deadline_expired = [&]() {
        if (cfg.deadlineMs <= 0.0)
            return false;
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        return ms >= cfg.deadlineMs;
    };

    while (true) {
        // Assemble one wavefront from every active strategy.
        std::vector<CompactionPlan> wave;
        std::vector<double> baselines;
        std::vector<std::pair<std::size_t, std::size_t>> slices;
        for (std::size_t i = 0; i < strategies.size(); ++i) {
            std::size_t begin = wave.size();
            if (active[i]) {
                auto trials = strategies[i]->propose();
                if (trials.empty()) {
                    active[i] = false;
                } else {
                    auto bl = strategies[i]->baselines();
                    wave.insert(wave.end(),
                                std::make_move_iterator(
                                    trials.begin()),
                                std::make_move_iterator(trials.end()));
                    baselines.insert(baselines.end(), bl.begin(),
                                     bl.end());
                }
            }
            slices.emplace_back(begin, wave.size() - begin);
        }
        if (wave.empty())
            break;  // every strategy retired

        auto outcomes = driver.evaluate(wave, baselines);

        for (std::size_t i = 0; i < strategies.size(); ++i) {
            auto [begin, count] = slices[i];
            if (count == 0)
                continue;
            std::vector<TrialOutcome> slice(
                std::make_move_iterator(
                    outcomes.begin() + static_cast<long>(begin)),
                std::make_move_iterator(
                    outcomes.begin() +
                    static_cast<long>(begin + count)));
            strategies[i]->observe(slice);
            shared.publish(strategies[i]->bestScore());
        }

        if (deadline_expired())
            break;  // anytime stop: the shared best stands
    }

    // Deterministic winner: best verified throughput, lowest
    // strategy index on ties (every best is at least the seed).
    std::size_t win = 0;
    for (std::size_t i = 1; i < strategies.size(); ++i) {
        if (strategies[i]->bestScore() >
            strategies[win]->bestScore())
            win = i;
    }

    RaceResult out;
    out.plan = strategies[win]->bestPlan();
    out.report = strategies[win]->bestReport();
    out.winner = static_cast<int>(win);
    out.iterations = static_cast<int>(strategies[win]->committed());
    for (std::size_t i = 0; i < strategies.size(); ++i) {
        StrategyStats row;
        row.name = strategies[i]->name();
        row.proposed = strategies[i]->proposed();
        row.committed = strategies[i]->committed();
        row.bestScore = strategies[i]->bestScore();
        row.exhausted = !active[i];
        out.stats.push_back(std::move(row));
    }
    return out;
}

} // namespace planner
} // namespace mpress
