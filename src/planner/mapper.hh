/**
 * @file
 * Stage-to-device mapping search (the paper's Figure 6 algorithm).
 *
 * Given per-stage memory demand, the mapper places stages on GPUs so
 * that overflowing ("exporter") stages sit next to NVLink neighbors
 * with spare memory, and assigns each importer's spare capacity to
 * the exporters that can reach it.  Mappings are scored by the
 * reciprocal of the worst exporter's D2D drain time (higher is
 * better), with full overflow coverage taking precedence and a
 * penalty for separating consecutive pipeline stages from a direct
 * NVLink path.
 *
 * For symmetric (switch-based) fabrics the search short-circuits:
 * every placement is equivalent, so the identity mapping is used and
 * all spare memory is aggressively granted (Sec. III-C).
 *
 * On multi-node clusters the placement decomposes hierarchically:
 * contiguous stage blocks are dealt to nodes in pipeline order (one
 * NIC crossing per node boundary) and each block is placed by an
 * independent intra-node scan on the extracted node view, with spare
 * grants finalized globally — importers are tiered intra-node first,
 * then cross-node over the NIC, before the planner falls back to host
 * swap.
 */

#ifndef MPRESS_PLANNER_MAPPER_HH
#define MPRESS_PLANNER_MAPPER_HH

#include <map>
#include <vector>

#include "compaction/plan.hh"
#include "hw/topology.hh"

namespace mpress {
namespace util {
class ThreadPool;
}
namespace planner {

using util::Bytes;
using util::Tick;

/** Tunables for the mapping search. */
struct MapperConfig
{
    /** When false, skip the placement search and keep the base
     *  system's suggested (identity) mapping — the Figure 9
     *  ablation baseline.  Spare-memory grants are still computed. */
    bool searchPlacement = true;

    /** Fraction of an importer's spare bytes that may be granted
     *  (the rest is headroom against estimation error). */
    double spareSafety = 0.85;

    /** Score penalty (in ms of equivalent drain time) per pair of
     *  consecutive stages without a direct NVLink, reflecting the
     *  P2P activation traffic that would bounce through the host. */
    double adjacencyPenaltyMs = 50.0;
};

/** Result of the mapping search. */
struct MappingResult
{
    std::vector<int> stageToGpu;
    std::map<int, std::vector<compaction::SpareGrant>> grants;
    double score = 0.0;
    /** Fraction of total overflow the grants can absorb. */
    double coverage = 0.0;
    /** Number of distinct placements evaluated (1 for symmetric
     *  fabrics).  With as many stages as GPUs this is the full n!
     *  scan; with fewer stages each k-permutation is evaluated once
     *  instead of (n-k)! duplicate times. */
    long evaluated = 0;
};

/**
 * Search the stage-to-device mapping.
 *
 * @param topo          the server
 * @param stage_demand  peak memory demand per stage (profile output)
 * @param capacity      usable per-GPU capacity
 * @param stage_desire  optional explicit per-stage D2D byte demand;
 *        when empty, each overflowing stage desires 2x its overflow
 *        (the pre-compaction call).  The planner's post-compaction
 *        re-map passes the flippable savings per stage here so spare
 *        memory revealed by compaction can be granted even though no
 *        stage overflows anymore.
 * @param pool          optional worker pool: the placement scan is
 *        split into fixed chunks (leading stage positions) evaluated
 *        concurrently.  The chunk layout and the lowest-index
 *        tie-break are independent of the thread count, so the
 *        returned mapping is byte-identical with or without a pool.
 */
MappingResult searchDeviceMapping(const hw::Topology &topo,
                                  const std::vector<Bytes>
                                      &stage_demand,
                                  Bytes capacity,
                                  MapperConfig config = {},
                                  const std::vector<Bytes>
                                      &stage_desire = {},
                                  util::ThreadPool *pool = nullptr);

} // namespace planner
} // namespace mpress

#endif // MPRESS_PLANNER_MAPPER_HH
