/**
 * @file
 * MPress Static: the memory-compaction planner (Fig. 5, Sec. III-D).
 *
 * The pipeline is profile -> map -> seed -> refine:
 *
 *  1. Profiler: one emulated iteration with no compaction records
 *     per-stage peak memory and per-tensor live intervals.
 *  2. Device mapping (Fig. 6) places stages and produces spare-memory
 *     grants for D2D swap.
 *  3. Seed assignment: optimizer states of overflowing stages go to
 *     GPU-CPU swap (extremely long live intervals); activation
 *     classes are assigned Recompute or GPU-CPU swap — whichever
 *     costs less on the critical path — until the projected savings
 *     cover the stage's overflow.
 *  4. Refinement: the emulator (one-iteration executor run) measures
 *     the current plan; the most expensive assignments are flipped to
 *     D2D swap while spare budget lasts, and each step is accepted
 *     only if measured throughput improves.
 *
 * Helper constructors for the paper's baseline configurations
 * (recompute-everything, GPU-CPU-swap-everything, D2D-only) live here
 * too so that benches and examples share one implementation.
 */

#ifndef MPRESS_PLANNER_PLANNER_HH
#define MPRESS_PLANNER_PLANNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/analyzer.hh"
#include "compaction/plan.hh"
#include "planner/costmodel.hh"
#include "planner/mapper.hh"
#include "planner/search.hh"
#include "runtime/executor.hh"
#include "verify/verify.hh"

namespace mpress {
namespace planner {

/** Planner tunables. */
struct PlannerConfig
{
    /** Refinement iterations (each evaluates a batch of trial plans,
     *  every trial costing one emulated iteration). */
    int maxIterations = 10;

    /** Activation classes flipped to D2D swap per refinement step.
     *  A step evaluates this batch plus its halvings (B, B/2, ... 1)
     *  as independent trials and keeps the best accepted one. */
    int d2dBatchPerStep = 8;

    /** Worker threads for the emulator-feedback search (trial
     *  batches and the coarse variants run concurrently, each on its
     *  own topology + executor).  The plan is identical for every
     *  thread count: trial generation is serial and the winner is
     *  picked by a fixed tie-break, so threads only change
     *  wall-clock time. */
    int threads = 1;

    /** Required relative throughput gain to accept a refinement. */
    double acceptGain = 0.002;

    /** Extra savings margin over the measured overflow. */
    double headroom = 0.03;

    /** Forwarded to CompactionPlan::d2dStriping (Fig. 9 ablation). */
    bool d2dStriping = true;

    /** Memoize trial reports across the refinement ladders (identical
     *  plan + config + scenario → cached TrainingReport).  Purely a
     *  wall-clock optimization: the picked plan and every report are
     *  byte-identical either way (pinned by the determinism tests). */
    bool trialCache = true;

    /** Analysis-first pruning tier: score every flip-ladder / sweep
     *  trial with the static analyzer (src/analysis/, microseconds
     *  per plan) and skip the emulated iteration for trials the
     *  certificate proves can never be accepted — provable OOM, or a
     *  throughput upper bound below the acceptance threshold.  The
     *  final plan is byte-identical with the tier on or off (only
     *  provably-rejected trials are skipped, and seed/escalation
     *  probes always run the emulator); pinned by the determinism
     *  tests. */
    bool analyticPrune = false;

    /** Race heterogeneous refinement strategies instead of running
     *  only the greedy flip ladder: the greedy wavefront, a
     *  simulated-annealing walker and an analysis-guided best-first
     *  explorer share one SearchDriver (worker pool, trial cache,
     *  analytic tier) and submit their trials as one concurrent
     *  wavefront per round.  The winner is picked by the fixed
     *  (best verified throughput, lowest strategy index) rule, so the
     *  returned plan is identical for every thread count and with the
     *  trial cache on or off; it can only match or beat the greedy
     *  ladder's plan. */
    bool portfolio = false;

    /** Anytime knob: wall-clock budget for the refinement race in
     *  milliseconds, checked between wavefront rounds.  0 (default)
     *  disables the deadline.  Every deadline still returns a
     *  verified feasible plan — at worst the seed plan — because
     *  strategies improve a shared best-so-far monotonically; a
     *  tighter deadline only means fewer improvement rounds.  A
     *  deadline generous enough to never fire yields the same plan
     *  as no deadline. */
    double deadlineMs = 0.0;

    /** Optional cross-job trial cache (not owned; nullptr = each
     *  plan keeps its private per-driver cache).  Entries are scoped
     *  by a (topology, model, partition, schedule) content digest,
     *  so a long-lived daemon can keep one TrialCache resident and
     *  repeated planning requests hit it without any risk of
     *  cross-job contamination.  The cache is purely a wall-clock
     *  optimization: plans and reports stay byte-identical. */
    TrialCache *sharedCache = nullptr;

    MapperConfig mapper;
};

/** Per-strategy accounting of one refinement race, in strategy
 *  order (index 0 is always the greedy wavefront). */
struct StrategyStats
{
    std::string name;             ///< stable strategy name
    std::uint64_t proposed = 0;   ///< trials contributed to wavefronts
    std::uint64_t committed = 0;  ///< improvements it accepted
    double bestScore = 0.0;       ///< best verified samples/sec found
    bool exhausted = false;       ///< retired before the race ended
};

/** Output of a profiling run. */
struct ProfileResult
{
    runtime::TrainingReport report;   ///< includes the liveness table
    std::vector<Bytes> stagePeak;     ///< peak per stage
    Bytes usableCapacity = 0;         ///< per-GPU capacity after
                                      ///< workspace reserve
};

/** Run one uncompacted, OOM-tolerant iteration and collect stats. */
ProfileResult profileJob(const hw::Topology &topo,
                         const model::TransformerModel &mdl,
                         const partition::Partition &part,
                         const pipeline::Schedule &sched,
                         runtime::ExecutorConfig exec_cfg = {});

/** Result of planning. */
struct PlanResult
{
    compaction::CompactionPlan plan;
    runtime::TrainingReport finalReport;
    MappingResult mapping;
    int iterations = 0;
    bool feasible = false;  ///< final emulated run completed w/o OOM

    /** Static verification of the returned plan.  Refinement steps
     *  whose trial plan fails verification are rejected, so a
     *  feasible result always satisfies verification.ok(). */
    verify::Report verification;

    /** Trial-cache counters of the emulator-feedback search (hits
     *  come only from genuinely repeated trials; zero when
     *  PlannerConfig::trialCache is off or planning ended before the
     *  refine loop). */
    std::uint64_t trialCacheHits = 0;
    std::uint64_t trialCacheMisses = 0;

    /** Times the executor's high-water policy released a worker
     *  arena's retained slabs during this search (long-lived daemons
     *  surface the counter through the serve stats endpoint). */
    std::uint64_t arenaShrinks = 0;

    /** Machine-checkable certificate of the returned plan from the
     *  static analyzer: per-GPU peak-memory intervals, host-memory
     *  interval, a critical-path latency lower bound, and a
     *  throughput upper bound.  Always computed (cheap); valid=false
     *  only when the tuple is structurally broken. */
    analysis::AnalysisCertificate certificate;

    /** Analytic-tier counters (zero unless
     *  PlannerConfig::analyticPrune): trials priced by the analyzer
     *  and the subset rejected without an emulated iteration. */
    std::uint64_t analyticScored = 0;
    std::uint64_t analyticPruned = 0;

    /** Index of the strategy whose plan won the refinement race
     *  (0 = greedy wavefront; -1 when planning returned before the
     *  race, e.g. no overflow or an infeasible seed). */
    int winnerStrategy = -1;

    /** Per-strategy race accounting (empty when the race never
     *  ran). */
    std::vector<StrategyStats> strategyStats;
};

/** Full MPress planning: all three techniques + device mapping. */
PlanResult planMPress(const hw::Topology &topo,
                      const model::TransformerModel &mdl,
                      const partition::Partition &part,
                      const pipeline::Schedule &sched,
                      PlannerConfig cfg = {},
                      runtime::ExecutorConfig exec_cfg = {});

/** MPress restricted to D2D swap only (the Fig. 7 ablation variant).
 *  Infeasible (OOM) when spare memory cannot absorb the overflow. */
PlanResult planD2dOnly(const hw::Topology &topo,
                       const model::TransformerModel &mdl,
                       const partition::Partition &part,
                       const pipeline::Schedule &sched,
                       PlannerConfig cfg = {},
                       runtime::ExecutorConfig exec_cfg = {});

/** Baseline: recompute every activation (no swaps). */
compaction::CompactionPlan
recomputeAllPlan(const partition::Partition &part);

/** Baseline: GPU-CPU swap every activation and offload optimizer
 *  state on every stage. */
compaction::CompactionPlan
gpuCpuSwapAllPlan(const partition::Partition &part);

} // namespace planner
} // namespace mpress

#endif // MPRESS_PLANNER_PLANNER_HH
