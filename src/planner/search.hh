/**
 * @file
 * Concurrent emulator-feedback search for the planner (the hot path
 * of Fig. 5's refine loop).
 *
 * Every refinement step of planMPress() and every coarse variant of
 * its joint-flip stage costs one full emulated training iteration.
 * The trials of one step are independent — each is a pure function of
 * (topology, job, candidate plan) — so SearchDriver evaluates them
 * concurrently on a util::ThreadPool.  Each pool worker owns a lazily
 * built hw::Topology copy (reused across all its trials) and every
 * trial constructs its own runtime::Executor, so no simulator state
 * is ever shared between threads.
 *
 * Because trials are pure, their reports memoize: the driver keeps a
 * cache keyed by a 64-bit FNV-1a signature of (serialized plan,
 * executor config, scenario id), with the full key text stored to
 * make hash collisions harmless.  Repeated plan variants across
 * flip-batch ladders, coarse-variant batches and robustness replays
 * return the cached TrainingReport instead of re-emulating; static
 * verification still runs per trial (it is ~25x cheaper than an
 * emulation and keeps the verified flag trustworthy).  The cache is
 * invisible in the output by construction — a hit returns exactly
 * what the skipped run would have produced.
 *
 * Determinism contract: evaluate() returns outcomes in trial order
 * regardless of scheduling, and pickBest() breaks ties by the fixed
 * rule (higher measured throughput wins; equal throughput goes to the
 * lower trial index).  A search at any thread count therefore selects
 * the same trial as the serial threads=1 search, and the planner
 * emits a byte-identical serialized plan.
 *
 * Beyond trial scoring, the driver exposes a robustness-evaluation
 * mode: evaluateRobustness() replays one finished plan across a
 * matrix of fault scenarios (one emulator run per scenario, fanned
 * out on the same pool) and reduces the degraded throughputs to
 * deterministic nearest-rank percentiles.  Planning trials themselves
 * always run fault-free — the ctor strips ExecutorConfig::faults — so
 * fault injection never perturbs plan selection.
 *
 * The grant-budget helpers live here too so the refinement gate and
 * its ledger arithmetic are unit-testable: admitFlipBatch() gates and
 * debits by the same quantity (a flip's full projected savings),
 * which keeps the remaining budget non-negative by construction.
 */

#ifndef MPRESS_PLANNER_SEARCH_HH
#define MPRESS_PLANNER_SEARCH_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "fault/scenario.hh"
#include "planner/mapper.hh"
#include "runtime/executor.hh"
#include "util/pool.hh"
#include "verify/verify.hh"

namespace mpress {
namespace planner {

/** Hit/miss counters of the driver's trial-report cache. */
struct TrialCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
};

/**
 * Thread-safe memoization store for trial TrainingReports, keyed by a
 * 64-bit signature with the full key bytes kept as a collision guard
 * (equal hash + different key counts as a miss, so memoization can
 * never change a result).
 *
 * Historically this map lived inside one SearchDriver and died with
 * it.  As a standalone object it can be shared across drivers — and
 * therefore across planning *sessions*: mpress-serve keeps one
 * resident TrialCache so a request's trial emulations hit on the
 * work of every earlier request.  Sharing across different jobs is
 * safe because every driver prefixes its keys with a job content key
 * (see SearchDriver::jobKey()): two jobs that disagree on topology,
 * model, partition or schedule can never exchange entries.
 */
class TrialCache
{
  public:
    /** Copy the report for (@p sig, @p key) into @p out; false on
     *  miss (including a signature collision). */
    bool lookup(std::uint64_t sig, const std::string &key,
                runtime::TrainingReport *out) const;

    /** Store @p report under (@p sig, @p key).  The first entry for
     *  a signature wins; a concurrent duplicate (or a colliding
     *  signature) is dropped and its key simply keeps missing. */
    void insert(std::uint64_t sig, std::string key,
                const runtime::TrainingReport &report);

    /** Aggregate hit/miss counters across every sharing driver. */
    TrialCacheStats stats() const;

    /** Number of resident entries. */
    std::size_t size() const;

    /** Drop every entry (counters are kept). */
    void clear();

  private:
    struct Entry
    {
        std::string key;  ///< full key bytes (collision guard)
        runtime::TrainingReport report;
    };

    mutable std::mutex _mu;
    std::unordered_map<std::uint64_t, Entry> _map;
    mutable TrialCacheStats _stats;
};

/** Counters of the analysis-first pruning tier. */
struct PruneStats
{
    std::uint64_t scored = 0;      ///< trials priced by the analyzer
    std::uint64_t prunedOom = 0;   ///< dropped: provable OOM
    std::uint64_t prunedSlow = 0;  ///< dropped: throughput bound
                                   ///< under the acceptance baseline

    std::uint64_t pruned() const { return prunedOom + prunedSlow; }
};

/** Result of emulating + statically verifying one trial plan. */
struct TrialOutcome
{
    runtime::TrainingReport report;
    bool verified = false;

    /** The analytic tier rejected the trial without emulating it:
     *  the report is synthetic (OOM flag or zero throughput) and
     *  verified stays false, so the outcome can never be accepted —
     *  exactly like the DES run it provably stands in for. */
    bool pruned = false;

    /** Acceptance test shared by every refinement stage: the trial
     *  survived emulation, passed static verification and beat the
     *  baseline throughput by the configured margin. */
    bool
    accepted(double baseline_samples_per_sec,
             double accept_gain) const
    {
        return !report.oom && verified &&
               report.samplesPerSec >
                   baseline_samples_per_sec * (1.0 + accept_gain);
    }
};

/** Outcome of replaying one plan under one fault scenario. */
struct RobustnessRow
{
    std::string scenario;            ///< Scenario::name
    runtime::TrainingReport report;  ///< degraded run's report

    /** Degraded throughput over the healthy baseline's; 0 when the
     *  degraded run ends in OOM (an unsurvivable scenario scores as a
     *  total loss, not as "no data"). */
    double throughputRatio = 0.0;
};

/**
 * Robustness profile of one plan across a scenario matrix: the
 * fault-free baseline, one row per scenario (row i corresponds to
 * scenarios[i]), and deterministic nearest-rank percentiles of the
 * throughput ratio.  worst <= p10 <= p50 by construction.
 */
struct RobustnessResult
{
    runtime::TrainingReport baseline;
    std::vector<RobustnessRow> rows;
    double worst = 0.0;  ///< minimum throughput ratio
    double p10 = 0.0;    ///< 10th-percentile ratio (nearest rank)
    double p50 = 0.0;    ///< median ratio (nearest rank)
};

/**
 * Evaluates batches of candidate plans as concurrent emulator runs.
 *
 * The driver borrows the job description (model, partition, schedule)
 * and the pool; all are owned by the caller and must outlive it.  The
 * topology is copied once per pool worker (and reused across that
 * worker's trials) so concurrent engines never share a hardware
 * description object.
 */
class SearchDriver
{
  public:
    SearchDriver(const hw::Topology &topo,
                 const model::TransformerModel &mdl,
                 const partition::Partition &part,
                 const pipeline::Schedule &sched,
                 runtime::ExecutorConfig exec_cfg,
                 util::ThreadPool &pool);

    /** Emulate + verify every plan in @p trials concurrently.
     *  Outcome i corresponds to trials[i]. */
    std::vector<TrialOutcome>
    evaluate(const std::vector<compaction::CompactionPlan> &trials);

    /**
     * Same as evaluate(), with a per-trial prune baseline: trial i's
     * throughput-bound rule compares against baselines[i] instead of
     * the global setPruneBaseline() value (a negative entry disables
     * the rule for that trial; the provable-OOM rule always applies).
     * The portfolio uses this to race strategies with different
     * acceptance thresholds in one wavefront: a simulated-anneal
     * downhill probe must see the real measured report, so it rides
     * with a disabled throughput rule while greedy/best-first trials
     * still prune.  @p baselines must be empty or trials.size().
     */
    std::vector<TrialOutcome>
    evaluate(const std::vector<compaction::CompactionPlan> &trials,
             const std::vector<double> &baselines);

    /** Convenience wrapper for a single plan (runs inline). */
    TrialOutcome evaluateOne(const compaction::CompactionPlan &plan);

    /**
     * Robustness-evaluation mode: replay @p plan once fault-free
     * (the baseline) and then once per scenario in @p scenarios,
     * concurrently on the pool, each run on its own topology copy
     * with the scenario injected via ExecutorConfig::faults.  The
     * degradation ladder stays enabled so a scenario's score reflects
     * the runtime's best recovery, not its first failure.
     *
     * Deterministic: rows are keyed by scenario index and the
     * percentiles are nearest-rank over the sorted ratios, so the
     * result is identical at any thread count.
     */
    RobustnessResult
    evaluateRobustness(const compaction::CompactionPlan &plan,
                       const std::vector<fault::Scenario> &scenarios);

    /**
     * Index of the best accepted trial, or -1 when none is accepted.
     * Fixed tie-break: highest samplesPerSec wins; exact ties go to
     * the lowest index.  Order-independent, hence thread-count
     * independent.
     */
    static int pickBest(const std::vector<TrialOutcome> &outcomes,
                        double baseline_samples_per_sec,
                        double accept_gain);

    util::ThreadPool &pool() { return _pool; }

    /** Enable/disable trial-report memoization (default: enabled). */
    void setCacheEnabled(bool on) { _cacheEnabled = on; }

    /**
     * Memoize through @p cache (non-owning; must outlive the driver)
     * instead of this driver's private store.  Entries this driver
     * wrote earlier stay in the private store — switch before the
     * first trial.  A shared cache may serve many concurrent drivers
     * for different jobs: the jobKey() prefix keeps their entries
     * disjoint.  Null restores the private store.
     */
    void setSharedCache(TrialCache *cache);

    /** Cache hit/miss counters of THIS driver's probes (a shared
     *  cache's own stats() aggregate every driver). */
    TrialCacheStats cacheStats() const;

    /** Total executor-arena high-water releases across the worker
     *  arenas.  Call between batches only: workers mutate their
     *  arenas while a batch is in flight. */
    std::uint64_t arenaShrinks() const;

    /**
     * Content key of this driver's job, prefixed to every
     * memoization key: topology (name, GPU count and spec capacity,
     * host/NVMe provisioning, fabric class), model configuration +
     * microbatch, partition stage boundaries, and schedule shape.
     * Captures the whole preset-reachable configuration surface; a
     * hand-mutated topology that disagrees only in a per-pair link
     * override should not share a TrialCache across jobs.
     */
    const std::string &jobKey() const { return _jobKey; }

    /**
     * Enable the analysis-first pruning tier (default: off).  Batch
     * trials are priced by the static analyzer first; a trial whose
     * certificate proves an OOM, or whose throughput upper bound
     * cannot beat the acceptance baseline, receives a synthetic
     * never-accepted outcome instead of a DES run.  Only provably
     * non-acceptable trials are pruned and pickBest() only ranks
     * accepted ones, so the winning trial — and the planner's final
     * plan — is byte-identical with the tier on or off.
     * evaluateOne() never prunes: seed/escalation callers need the
     * real report (e.g. the DES's time-ordered OOM GPU).
     */
    void setAnalyticPrune(bool on) { _analyticPrune = on; }

    /** Baseline for the throughput prune rule, matching the
     *  acceptance test: a trial with upper bound <= baseline *
     *  (1 + gain) can never be accepted.  Negative baseline (the
     *  default) disables the throughput rule; the OOM rule still
     *  applies. */
    void
    setPruneBaseline(double baseline_samples_per_sec,
                     double accept_gain)
    {
        _pruneBaseline = baseline_samples_per_sec;
        _pruneGain = accept_gain;
    }

    /** Analytic-tier counters accumulated so far. */
    PruneStats pruneStats() const;

    /**
     * Full memoization key of one trial: the serialized plan, the
     * executor-config fields that shape an emulation (doubles in
     * hexfloat so the text round-trips bit-exactly) and the scenario
     * id ("" for fault-free trials).  Two runs with equal key text
     * are the same pure function call, so the cached TrainingReport
     * is byte-identical to a re-run.
     */
    static std::string trialKey(const compaction::CompactionPlan &plan,
                                const runtime::ExecutorConfig &cfg,
                                std::string_view scenario_id);

    /** 64-bit FNV-1a signature of trialKey(...). */
    static std::uint64_t
    planSignature(const compaction::CompactionPlan &plan,
                  const runtime::ExecutorConfig &cfg,
                  std::string_view scenario_id);

    /** Compact binary form of trialKey(): injective (tagged,
     *  length-prefixed sections) and ~two orders of magnitude cheaper
     *  to build.  The cache keys on it internally; the portfolio's
     *  best-first frontier uses it to deduplicate candidate plans. */
    static std::string
    trialKeyBinary(const compaction::CompactionPlan &plan,
                   const runtime::ExecutorConfig &cfg,
                   std::string_view scenario_id);

    /** The executor config trials run under (scoring-pinned: no
     *  liveness, fail-fast, fault-free).  Key material for external
     *  deduplication via trialKeyBinary(). */
    const runtime::ExecutorConfig &trialConfig() const
    {
        return _execCfg;
    }

    /** Content key of a fault scenario (name, seed, every event
     *  field) for robustness-replay memoization. */
    static std::string scenarioKey(const fault::Scenario &scenario);

  private:
    /** Reusable per-worker state: the topology copy plus the executor
     *  arena (DES engine slabs and the fabric, whose per-lane stream
     *  rings scale with the square of the GPU count — the dominant
     *  per-trial allocation on cluster topologies), all kept across
     *  every trial the worker runs.  The arena's retained fabric is
     *  keyed on the address of the worker's stable topology copy, so
     *  it is built once and only reset thereafter.  A worker index is
     *  owned by exactly one thread for the duration of a batch, so no
     *  synchronization is needed and an arena is never shared by two
     *  live executors. */
    struct WorkerArena
    {
        std::unique_ptr<hw::Topology> topo;
        runtime::ExecutorArena exec;
    };

    /** This thread's arena slot (lazily building the topology). */
    WorkerArena &workerArena();

    /** Per-worker reusable topology copy (lazily constructed). */
    const hw::Topology &workerTopology();

    /** Shared body of evaluate()/evaluateOne(); the analytic tier
     *  runs only when @p allow_prune is set.  @p baselines overrides
     *  the global prune baseline per trial when non-empty. */
    std::vector<TrialOutcome>
    evaluateImpl(const std::vector<compaction::CompactionPlan> &trials,
                 bool allow_prune,
                 const std::vector<double> &baselines);

    /** Run one emulation through the memo cache.  @p cfg must carry
     *  any scenario pointer; @p scenario_id stands in for it in the
     *  key.  Collisions fall back to a real run (full key text is
     *  compared), so memoization can never change a result. */
    runtime::TrainingReport
    cachedRun(const compaction::CompactionPlan &plan,
              const runtime::ExecutorConfig &cfg,
              std::string_view scenario_id);

    const hw::Topology &_topo;
    const model::TransformerModel &_mdl;
    const partition::Partition &_part;
    const pipeline::Schedule &_sched;
    runtime::ExecutorConfig _execCfg;
    util::ThreadPool &_pool;

    /** One lazily-built arena per pool worker, reused across every
     *  trial that worker runs (runTraining and verifyPlan only read
     *  the topology; the executor rewinds the engine).  Replaces the
     *  per-trial hw::Topology copy and the per-trial engine slabs. */
    std::vector<WorkerArena> _workerArenas;

    std::string _jobKey;

    bool _cacheEnabled = true;
    TrialCache _ownCache;
    TrialCache *_cache = &_ownCache;
    std::atomic<std::uint64_t> _cacheHits{0};
    std::atomic<std::uint64_t> _cacheMisses{0};

    bool _analyticPrune = false;
    double _pruneBaseline = -1.0;
    double _pruneGain = 0.0;
    std::atomic<std::uint64_t> _analyticScored{0};
    std::atomic<std::uint64_t> _prunedOom{0};
    std::atomic<std::uint64_t> _prunedSlow{0};
};

/** One refinement flip candidate as seen by the budget gate. */
struct FlipCandidate
{
    int gpu = 0;        ///< exporter GPU of the candidate's stage
    util::Bytes stash = 0;    ///< bytes per instance
    util::Bytes savings = 0;  ///< stash x in-flight instances
};

/**
 * Remaining per-exporter D2D grant budget: each exporter's total
 * granted bytes minus the savings of flips already committed against
 * it.  Debits are clamped at zero — the gate admits a flip only when
 * its full savings fit, so a negative remainder indicates stale
 * debits (e.g. grants shrunk by a re-map) rather than real
 * overcommitment, and must not poison later gate decisions.
 *
 * @param grants  exporter GPU -> its spare-memory grants
 * @param debits  (exporter GPU, savings) pairs already committed
 */
std::map<int, util::Bytes>
remainingGrantBudget(
    const std::map<int, std::vector<compaction::SpareGrant>> &grants,
    const std::vector<std::pair<int, util::Bytes>> &debits);

/**
 * Budget gate of the refinement loop: scan @p flippable in order and
 * admit up to @p max_flips candidates whose full savings fit the
 * exporter's remaining @p budget, debiting exactly what was gated on.
 * Returns the indices of admitted candidates; @p budget is left with
 * the post-batch remainder (non-negative by construction).
 */
std::vector<std::size_t>
admitFlipBatch(const std::vector<FlipCandidate> &flippable,
               std::map<int, util::Bytes> &budget, int max_flips);

} // namespace planner
} // namespace mpress

#endif // MPRESS_PLANNER_SEARCH_HH
