/**
 * @file
 * Anytime portfolio refinement: heterogeneous search strategies
 * racing on one shared emulator-feedback SearchDriver.
 *
 * The planner's refine loop (Fig. 5) is a sequence of trial batches
 * scored by emulated iterations.  Instead of hard-coding one greedy
 * schedule, the race groups strategies behind a small interface —
 * propose a wavefront of trial plans, observe the outcomes — and
 * evaluates the concatenation of every active strategy's proposals as
 * ONE concurrent batch per round.  Heterogeneity is the point: the
 * greedy flip ladder exploits, the simulated-annealing walker escapes
 * its plateaus, and the analysis-guided best-first explorer spends
 * certificates (throughput upper bounds) instead of emulations to
 * rank where to look next.
 *
 * Sharing one SearchDriver means strategies cooperate through the
 * trial cache — a plan one strategy already emulated is a cache hit
 * for another — and through the shared best-so-far score (an atomic,
 * readable mid-round by concurrent evaluation callbacks), which the
 * best-first explorer uses to discard frontier nodes whose
 * certificate bound proves they can never win the race.
 *
 * Determinism contract: trial generation and outcome observation run
 * serially between wavefronts; only the evaluation inside
 * SearchDriver fans out.  Every strategy is deterministic (the
 * annealer's RNG is fixed-seeded and its Metropolis draws depend only
 * on trial outcomes, which are pure), and the winner is picked by the
 * fixed (best verified throughput, lowest strategy index) rule — so
 * the race returns a byte-identical plan for every thread count, with
 * the trial cache on or off, and with the analytic prune tier on or
 * off (each strategy's prune baseline mirrors its own acceptance
 * threshold, so a pruned trial is exactly one it would have
 * rejected).  A wall-clock deadline is the only nondeterministic
 * input, and it is opt-in: deadlineMs=0 never stops early, and any
 * deadline that never fires leaves the result unchanged.
 */

#ifndef MPRESS_PLANNER_PORTFOLIO_HH
#define MPRESS_PLANNER_PORTFOLIO_HH

#include <vector>

#include "planner/planner.hh"

namespace mpress {
namespace planner {

/** One assignable activation class with its planning statistics.
 *  Produced by the seeder from the profile; every refinement
 *  strategy evolves its own copy of the per-stage candidate table. */
struct Candidate
{
    memory::TensorRef ref;
    Bytes stash = 0;    ///< bytes per instance
    Bytes savings = 0;  ///< stash x in-flight instances
    Tick interval = 0;  ///< observed min live interval
    Tick recomputeExtra = 0;
    Tick gpuCpuExtra = 0;
    compaction::Kind chosen = compaction::Kind::None;

    Tick
    chosenExtra() const
    {
        switch (chosen) {
          case compaction::Kind::Recompute:
            return recomputeExtra;
          case compaction::Kind::GpuCpuSwap:
            return gpuCpuExtra;
          default:
            return 0;
        }
    }
};

/** The mutable compaction state a strategy evolves: the per-class
 *  technique choices plus the stage-level offload switches.  The
 *  device mapping is fixed race-wide (re-mapping happens before the
 *  race), so it is not part of the state. */
struct PlanState
{
    std::vector<std::vector<Candidate>> candidates;  ///< per stage
    std::vector<bool> offloadOpt;
    std::vector<bool> offloadStash;
};

/** Build a CompactionPlan from candidate choices + mapping. */
compaction::CompactionPlan
materializePlan(const std::vector<std::vector<Candidate>> &per_stage,
                const std::vector<bool> &offload_opt,
                const std::vector<bool> &offload_stash,
                const MappingResult &mapping, bool d2d_striping);

/** PlanState convenience overload. */
compaction::CompactionPlan
materializePlan(const PlanState &state, const MappingResult &mapping,
                bool d2d_striping);

/** Outcome of the refinement race: the winning strategy's best plan
 *  (never worse than the seed — every strategy starts from it). */
struct RaceResult
{
    compaction::CompactionPlan plan;
    runtime::TrainingReport report;
    int winner = 0;      ///< strategy index (0 = greedy wavefront)
    int iterations = 0;  ///< winner's committed improvements
    std::vector<StrategyStats> stats;
};

/**
 * Run the refinement race from the seeded plan.
 *
 * With cfg.portfolio unset only the greedy wavefront runs — the race
 * loop then degenerates to the classic sequential refine loop (one
 * strategy, one wavefront per round) and returns its exact plan.
 * With cfg.portfolio set the annealer and the best-first explorer
 * join the race.  cfg.deadlineMs bounds the race wall-clock (checked
 * between rounds); the job description and mapping must outlive the
 * call.
 */
RaceResult
racePortfolio(SearchDriver &driver, const hw::Topology &topo,
              const model::TransformerModel &mdl,
              const partition::Partition &part,
              const pipeline::Schedule &sched,
              const MappingResult &mapping, const PlannerConfig &cfg,
              const PlanState &seed_state,
              const compaction::CompactionPlan &seed_plan,
              const runtime::TrainingReport &seed_report);

} // namespace planner
} // namespace mpress

#endif // MPRESS_PLANNER_PORTFOLIO_HH
