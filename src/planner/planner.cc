#include "planner/planner.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mpress {
namespace planner {

using compaction::CompactionPlan;
using compaction::Kind;
using memory::TensorRef;

ProfileResult
profileJob(const hw::Topology &topo,
           const model::TransformerModel &mdl,
           const partition::Partition &part,
           const pipeline::Schedule &sched,
           runtime::ExecutorConfig exec_cfg)
{
    exec_cfg.recordLiveness = true;
    exec_cfg.failFastOnOom = false;  // measure true demand
    ProfileResult out;
    out.report = runtime::runTraining(topo, mdl, part, sched, {},
                                      exec_cfg);
    out.usableCapacity = static_cast<Bytes>(
        static_cast<double>(topo.gpu().memCapacity) /
        exec_cfg.memOverheadFactor);
    // With the identity mapping, stage s ran on GPU s.
    out.stagePeak.resize(static_cast<std::size_t>(part.numStages()));
    for (int s = 0; s < part.numStages(); ++s) {
        out.stagePeak[static_cast<std::size_t>(s)] =
            out.report.gpus[static_cast<std::size_t>(s)].peak;
    }
    return out;
}

CompactionPlan
recomputeAllPlan(const partition::Partition &part)
{
    CompactionPlan plan;
    for (const auto &stage : part.stages) {
        for (std::size_t l = stage.firstLayer; l <= stage.lastLayer;
             ++l) {
            plan.activations[{stage.index, static_cast<int>(l)}] =
                Kind::Recompute;
        }
    }
    return plan;
}

CompactionPlan
gpuCpuSwapAllPlan(const partition::Partition &part)
{
    CompactionPlan plan;
    plan.offloadOptState.assign(
        static_cast<std::size_t>(part.numStages()), true);
    plan.offloadWeightStash.assign(
        static_cast<std::size_t>(part.numStages()), true);
    for (const auto &stage : part.stages) {
        for (std::size_t l = stage.firstLayer; l <= stage.lastLayer;
             ++l) {
            plan.activations[{stage.index, static_cast<int>(l)}] =
                Kind::GpuCpuSwap;
        }
    }
    return plan;
}

namespace {

/** One assignable activation class with its planning statistics. */
struct Candidate
{
    TensorRef ref;
    Bytes stash = 0;       ///< bytes per instance
    Bytes savings = 0;     ///< stash x in-flight instances
    Tick interval = 0;     ///< observed min live interval
    Tick recomputeExtra = 0;
    Tick gpuCpuExtra = 0;
    Kind chosen = Kind::None;

    Tick
    chosenExtra() const
    {
        switch (chosen) {
          case Kind::Recompute:
            return recomputeExtra;
          case Kind::GpuCpuSwap:
            return gpuCpuExtra;
          default:
            return 0;
        }
    }
};

/** Collect per-stage candidates from a profile. */
std::vector<std::vector<Candidate>>
collectCandidates(const model::TransformerModel &mdl,
                  const partition::Partition &part,
                  const pipeline::Schedule &sched,
                  const ProfileResult &profile,
                  const CostModel &cost)
{
    std::vector<std::vector<Candidate>> per_stage(
        static_cast<std::size_t>(part.numStages()));
    for (const auto &stage : part.stages) {
        int inflight = sched.maxInFlight(stage.index);
        for (std::size_t l = stage.firstLayer; l <= stage.lastLayer;
             ++l) {
            const auto &layer = mdl.layer(l);
            if (layer.activationStash <= 0)
                continue;
            Candidate c;
            c.ref = {stage.index, static_cast<int>(l)};
            c.stash = layer.activationStash;
            c.savings = layer.activationStash * inflight;
            const auto *li = profile.report.liveness.find(c.ref);
            c.interval = li ? li->minInterval() : 0;
            c.recomputeExtra = cost.recomputeExtra(layer);
            c.gpuCpuExtra = cost.gpuCpuSwapExtra(
                layer.activationStash, c.interval);
            per_stage[static_cast<std::size_t>(stage.index)]
                .push_back(c);
        }
    }
    return per_stage;
}

runtime::TrainingReport
emulate(const hw::Topology &topo, const model::TransformerModel &mdl,
        const partition::Partition &part,
        const pipeline::Schedule &sched, const CompactionPlan &plan,
        runtime::ExecutorConfig exec_cfg)
{
    exec_cfg.recordLiveness = false;
    exec_cfg.failFastOnOom = true;
    return runtime::runTraining(topo, mdl, part, sched, plan,
                                exec_cfg);
}

/** Verifier options consistent with the emulator's capacity model. */
verify::Options
verifierOptions(const runtime::ExecutorConfig &exec_cfg)
{
    verify::Options opts;
    opts.memOverheadFactor = exec_cfg.memOverheadFactor;
    return opts;
}

/** Analysis certificate of @p plan, consistent with the emulator's
 *  capacity and swap-lookahead model. */
analysis::AnalysisCertificate
certify(const hw::Topology &topo, const model::TransformerModel &mdl,
        const partition::Partition &part,
        const pipeline::Schedule &sched, const CompactionPlan &plan,
        const runtime::ExecutorConfig &exec_cfg)
{
    analysis::AnalysisOptions aopts;
    aopts.memOverheadFactor = exec_cfg.memOverheadFactor;
    aopts.swapInLookahead = exec_cfg.swapInLookahead;
    return analysis::analyzePlan(topo, mdl, part, sched, plan,
                                 aopts);
}

/** Build a CompactionPlan from candidate choices + mapping. */
CompactionPlan
materialize(const std::vector<std::vector<Candidate>> &per_stage,
            const std::vector<bool> &offload_opt,
            const std::vector<bool> &offload_stash,
            const MappingResult &mapping, bool d2d_striping)
{
    CompactionPlan plan;
    plan.d2dStriping = d2d_striping;
    plan.offloadOptState.assign(offload_opt.begin(),
                                offload_opt.end());
    plan.offloadWeightStash.assign(offload_stash.begin(),
                                   offload_stash.end());
    plan.stageToGpu = mapping.stageToGpu;
    plan.spareGrants = mapping.grants;
    for (const auto &stage : per_stage) {
        for (const auto &c : stage) {
            if (c.chosen != Kind::None)
                plan.activations[c.ref] = c.chosen;
        }
    }
    return plan;
}

} // namespace

PlanResult
planMPress(const hw::Topology &topo,
           const model::TransformerModel &mdl,
           const partition::Partition &part,
           const pipeline::Schedule &sched, PlannerConfig cfg,
           runtime::ExecutorConfig exec_cfg)
{
    PlanResult result;

    // (1) Profile.
    ProfileResult profile =
        profileJob(topo, mdl, part, sched, exec_cfg);
    const Bytes capacity = profile.usableCapacity;

    // No memory pressure: train as-is.
    bool any_overflow = false;
    for (Bytes peak : profile.stagePeak)
        any_overflow |= peak > capacity;
    if (!any_overflow) {
        result.finalReport = std::move(profile.report);
        result.feasible = !result.finalReport.oom;
        result.verification = verify::verifyPlan(
            topo, mdl, part, sched, result.plan,
            verifierOptions(exec_cfg));
        result.certificate = certify(topo, mdl, part, sched,
                                     result.plan, exec_cfg);
        return result;
    }

    // (2) Device mapping + spare-memory grants.
    result.mapping = searchDeviceMapping(topo, profile.stagePeak,
                                         capacity, cfg.mapper);

    CostModel cost(topo, mdl.config().precision);
    auto candidates =
        collectCandidates(mdl, part, sched, profile, cost);

    // The refinement stages below evaluate batches of independent
    // trial plans; the driver scores them as concurrent emulator runs
    // (per-worker topology arenas, per-trial executors) and the fixed
    // tie-break keeps the result identical for every thread count.
    // It is built before the seed emulation so the seed/escalation
    // runs land in the trial cache and later identical variants hit.
    util::ThreadPool pool(cfg.threads);
    SearchDriver driver(topo, mdl, part, sched, exec_cfg, pool);
    driver.setCacheEnabled(cfg.trialCache);
    driver.setAnalyticPrune(cfg.analyticPrune);
    auto record_search_stats = [&result, &driver]() {
        TrialCacheStats stats = driver.cacheStats();
        result.trialCacheHits = stats.hits;
        result.trialCacheMisses = stats.misses;
        PruneStats prune = driver.pruneStats();
        result.analyticScored = prune.scored;
        result.analyticPruned = prune.pruned();
    };

    // (3) Seed assignment per overflowing stage.
    std::vector<bool> offload_opt(
        static_cast<std::size_t>(part.numStages()), false);
    std::vector<bool> offload_stash(
        static_cast<std::size_t>(part.numStages()), false);
    for (const auto &stage : part.stages) {
        auto s = static_cast<std::size_t>(stage.index);
        double over = static_cast<double>(profile.stagePeak[s]) *
                          (1.0 + cfg.headroom) -
                      static_cast<double>(capacity);
        if (over <= 0)
            continue;
        Bytes need = static_cast<Bytes>(over);

        // Activations first, cheapest critical-path cost first.  The
        // per-tensor swap cost is only hidden while the stage's PCIe
        // channel keeps up: each microbatch gives the stage roughly
        // its fwd+bwd compute time of channel budget, and swap
        // round-trips beyond that budget pay full price.  Without
        // this, a long live interval makes every tensor look free to
        // swap and the seed plan saturates PCIe.
        Tick pcie_budget = static_cast<Tick>(
            0.9 * static_cast<double>(cost.topology().gpu().computeTime(
                      3.0 * stage.fwdFlops,
                      mdl.config().precision)));
        auto &cands = candidates[s];
        std::stable_sort(cands.begin(), cands.end(),
                         [](const Candidate &a, const Candidate &b) {
                             return std::min(a.recomputeExtra,
                                             a.gpuCpuExtra) <
                                    std::min(b.recomputeExtra,
                                             b.gpuCpuExtra);
                         });
        for (auto &c : cands) {
            if (need <= 0)
                break;
            Tick round_trip = 2 * cost.gpuCpuSwapTime(c.stash);
            Tick gcs_extra = pcie_budget >= round_trip
                                 ? c.gpuCpuExtra
                                 : std::max(c.gpuCpuExtra, round_trip);
            if (c.recomputeExtra <= gcs_extra) {
                c.chosen = Kind::Recompute;
            } else {
                c.chosen = Kind::GpuCpuSwap;
                pcie_budget -= round_trip;
            }
            // Record the contended cost so refinement can target it.
            c.gpuCpuExtra = gcs_extra;
            need -= c.savings;
        }

        // Optimizer state goes to the host only when activation
        // savings cannot cover the overflow (Table IV: small jobs
        // keep the optimizer resident, huge jobs must offload).
        if (need > 0) {
            offload_opt[s] = true;
            need -= stage.optStateBytes;
        }
        // Last resort within GPU-CPU swap: park stashed weight
        // versions (PipeDream) in host memory.
        int versions = sched.weightVersions(stage.index);
        if (need > 0 && versions > 2) {
            offload_stash[s] = true;
            need -= stage.paramBytes * (versions - 2);
        }
    }

    // (4) Emulate the seed; escalate if it still OOMs.  Seed and
    // escalation runs go through the driver so they are memoized like
    // any other trial (the driver pins the same scoring config the
    // old emulate() helper forced, and planning stays fault-free).
    CompactionPlan plan =
        materialize(candidates, offload_opt, offload_stash,
                    result.mapping, cfg.d2dStriping);
    runtime::TrainingReport current =
        driver.evaluateOne(plan).report;
    int escalations = 0;
    while (current.oom && escalations < part.numStages() + 2) {
        // Escalate only on the stages mapped to the OOM GPU (or
        // everywhere once targeted escalation is exhausted): first
        // assign their remaining activation classes, then offload
        // their optimizer state.
        bool assigned_more = false;
        for (auto &stage_cands : candidates) {
            auto stage_idx = static_cast<std::size_t>(
                &stage_cands - candidates.data());
            bool target_stage =
                current.oomGpu < 0 ||
                plan.gpuForStage(static_cast<int>(stage_idx)) ==
                    current.oomGpu ||
                escalations >= part.numStages();
            if (!target_stage)
                continue;
            bool stage_assigned = false;
            for (auto &c : stage_cands) {
                if (c.chosen == Kind::None) {
                    // The seed's PCIe budget is already spent, so
                    // escalation prioritizes recomputation (the
                    // paper's Sec. III-D observation).
                    c.chosen = Kind::Recompute;
                    stage_assigned = true;
                }
            }
            if (!stage_assigned && !offload_opt[stage_idx]) {
                offload_opt[stage_idx] = true;
                stage_assigned = true;
            }
            if (!stage_assigned && !offload_stash[stage_idx] &&
                sched.weightVersions(static_cast<int>(stage_idx)) >
                    2) {
                offload_stash[stage_idx] = true;
                stage_assigned = true;
            }
            assigned_more |= stage_assigned;
        }
        if (!assigned_more)
            break;
        ++escalations;
        plan = materialize(candidates, offload_opt, offload_stash,
                    result.mapping, cfg.d2dStriping);
        current = driver.evaluateOne(plan).report;
    }
    if (current.oom) {
        result.plan = std::move(plan);
        result.finalReport = std::move(current);
        result.feasible = false;
        result.verification = verify::verifyPlan(
            topo, mdl, part, sched, result.plan,
            verifierOptions(exec_cfg));
        result.certificate = certify(topo, mdl, part, sched,
                                     result.plan, exec_cfg);
        record_search_stats();
        return result;
    }

    // (4a) Re-map with post-compaction demand.  The profile-based
    // mapping saw every stage overflowing, so importers had nothing
    // to lend; once the seed plan compacts the heavy stages, the
    // emulator-measured peaks reveal the real spare memory, and a
    // second mapping pass turns it into D2D grants (the emulator
    // feedback loop of Fig. 5).
    {
        std::vector<Bytes> demand2(
            static_cast<std::size_t>(part.numStages()), 0);
        std::vector<Bytes> desire2(
            static_cast<std::size_t>(part.numStages()), 0);
        Bytes total_spare = 0;
        for (int s = 0; s < part.numStages(); ++s) {
            Bytes peak =
                current.gpus[static_cast<std::size_t>(
                                 plan.gpuForStage(s))]
                    .peak;
            demand2[static_cast<std::size_t>(s)] = peak;
            if (peak < capacity) {
                total_spare += static_cast<Bytes>(
                    static_cast<double>(capacity - peak) *
                    cfg.mapper.spareSafety);
            }
            for (const auto &c :
                 candidates[static_cast<std::size_t>(s)]) {
                if (c.chosen == Kind::Recompute ||
                    c.chosen == Kind::GpuCpuSwap)
                    desire2[static_cast<std::size_t>(s)] += c.savings;
            }
        }
        // Throughput follows the slowest stage, so spare must be
        // spread fairly: capping each stage's desire near the fair
        // share relieves compaction pressure everywhere instead of
        // fully draining a few stages while the rest stay
        // recompute-bound.
        Bytes fair = static_cast<Bytes>(
            1.2 * static_cast<double>(total_spare) /
            part.numStages());
        for (auto &d : desire2)
            d = std::min(d, fair);
        MappingResult mapping2 = searchDeviceMapping(
            topo, demand2, capacity, cfg.mapper, desire2);
        CompactionPlan plan2 =
            materialize(candidates, offload_opt, offload_stash,
                        mapping2, cfg.d2dStriping);
        // Unlike refinement trials the re-map may accept a slight
        // measured regression: better grants unlock D2D flips later.
        TrialOutcome out2 = driver.evaluateOne(plan2);
        if (!out2.report.oom && out2.verified &&
            out2.report.samplesPerSec >=
                current.samplesPerSec * (1.0 - cfg.acceptGain)) {
            result.mapping = std::move(mapping2);
            plan = std::move(plan2);
            current = std::move(out2.report);
        }
    }

    // (5) Refinement: flip the costliest assignments to D2D swap
    // while spare budget remains; accept on measured improvement.
    // Each step generates a ladder of trial flip-batches (the full
    // batch and its halvings) and scores them concurrently; the best
    // accepted trial is committed.
    for (int iter = 0; iter < cfg.maxIterations; ++iter) {
        // Remaining grant budget per exporter GPU: total grants minus
        // the savings of flips committed in earlier steps — the same
        // quantity the admission gate below checks and debits, so the
        // ledger stays non-negative (clamped defensively in case a
        // re-map shrank the grants under committed flips).
        std::vector<std::pair<int, Bytes>> debits;
        for (const auto &stage_cands : candidates) {
            for (const auto &c : stage_cands) {
                if (c.chosen == Kind::D2dSwap) {
                    debits.emplace_back(
                        plan.gpuForStage(c.ref.stage), c.savings);
                }
            }
        }
        std::map<int, Bytes> budget =
            remainingGrantBudget(result.mapping.grants, debits);

        // All surviving assignments are flip candidates: the static
        // extra-cost model underestimates contention (PCIe swaps
        // share a channel with P2P bounces and optimizer traffic),
        // so even "hidden" classes may measurably improve when moved
        // to NVLink.  Throughput follows the slowest stage, so the
        // batch is drawn round-robin across stages (costliest first
        // within each stage); the emulator-based acceptance check
        // keeps the search honest.
        std::vector<std::vector<Candidate *>> per_stage_flips(
            candidates.size());
        for (std::size_t s = 0; s < candidates.size(); ++s) {
            for (auto &c : candidates[s]) {
                if (c.chosen == Kind::Recompute ||
                    c.chosen == Kind::GpuCpuSwap)
                    per_stage_flips[s].push_back(&c);
            }
            std::stable_sort(
                per_stage_flips[s].begin(), per_stage_flips[s].end(),
                [](const Candidate *a, const Candidate *b) {
                    if (a->chosenExtra() != b->chosenExtra())
                        return a->chosenExtra() > b->chosenExtra();
                    return a->savings > b->savings;
                });
        }
        std::vector<Candidate *> flippable;
        for (std::size_t round = 0;; ++round) {
            bool any = false;
            for (const auto &stage_flips : per_stage_flips) {
                if (round < stage_flips.size()) {
                    flippable.push_back(stage_flips[round]);
                    any = true;
                }
            }
            if (!any)
                break;
        }

        // The admission gate (admitFlipBatch) checks an exporter's
        // remaining budget against a flip's full savings and debits
        // exactly that, so an admitted flip's instances are all
        // covered by grants — no flip is admitted whose savings the
        // grants cannot absorb.
        std::vector<FlipCandidate> gate_view;
        gate_view.reserve(flippable.size());
        for (const Candidate *c : flippable) {
            gate_view.push_back({plan.gpuForStage(c->ref.stage),
                                 c->stash, c->savings});
        }

        // Trial ladder: the full batch and its halvings.  Admitted
        // sets are nested prefixes of the flippable order, so the
        // trials differ only in flip count; larger batches come
        // first so the fixed tie-break prefers more D2D coverage on
        // equal measured throughput.
        std::vector<std::vector<Candidate *>> trial_flips;
        std::vector<CompactionPlan> trials;
        for (int batch = cfg.d2dBatchPerStep; batch >= 1;
             batch /= 2) {
            std::map<int, Bytes> scratch = budget;
            auto admitted =
                admitFlipBatch(gate_view, scratch, batch);
            if (admitted.empty())
                break;
            // Halvings that admit the same nested prefix produce the
            // same plan; the duplicate trial is a cache hit, and the
            // strictly-greater tie-break keeps the first occurrence,
            // so the picked plan is unchanged.
            std::vector<Candidate *> flips;
            std::vector<Kind> prior;
            for (std::size_t idx : admitted) {
                flips.push_back(flippable[idx]);
                prior.push_back(flippable[idx]->chosen);
                flippable[idx]->chosen = Kind::D2dSwap;
            }
            trials.push_back(
                materialize(candidates, offload_opt, offload_stash,
                            result.mapping, cfg.d2dStriping));
            for (std::size_t k = 0; k < flips.size(); ++k)
                flips[k]->chosen = prior[k];
            trial_flips.push_back(std::move(flips));
        }
        if (trials.empty())
            break;

        // The prune baseline mirrors the acceptance threshold the
        // outcomes will be judged against below.
        driver.setPruneBaseline(current.samplesPerSec,
                                cfg.acceptGain);
        auto outcomes = driver.evaluate(trials);
        int best = SearchDriver::pickBest(
            outcomes, current.samplesPerSec, cfg.acceptGain);
        if (best < 0)
            break;
        auto b = static_cast<std::size_t>(best);
        for (Candidate *c : trial_flips[b])
            c->chosen = Kind::D2dSwap;
        plan = std::move(trials[b]);
        current = std::move(outcomes[b].report);
        ++result.iterations;
    }

    // (6) Second refinement: GPU-CPU swap classes picked as "hidden"
    // by the static model can still lose to recomputation once the
    // PCIe channel also carries optimizer/stash offload traffic, and
    // an optimizer offload seeded for safety may be unnecessary once
    // activations are compacted.  Incremental flips plateau when the
    // channel stays saturated, so evaluate the three coarse variants
    // jointly and keep the best measured one: (a) all swap classes
    // recomputed, (b) optimizer offload retired, (c) both.
    {
        auto apply_variant = [&](bool rc_max, bool keep_offload)
            -> CompactionPlan {
            for (auto &stage_cands : candidates) {
                for (auto &c : stage_cands) {
                    if (rc_max && c.chosen == Kind::GpuCpuSwap)
                        c.chosen = Kind::Recompute;
                }
            }
            std::vector<bool> opt =
                keep_offload ? offload_opt
                             : std::vector<bool>(offload_opt.size(),
                                                 false);
            return materialize(candidates, opt, offload_stash,
                               result.mapping, cfg.d2dStriping);
        };
        auto snapshot = [&]() {
            std::vector<Kind> kinds;
            for (const auto &stage_cands : candidates)
                for (const auto &c : stage_cands)
                    kinds.push_back(c.chosen);
            return kinds;
        };
        auto restore = [&](const std::vector<Kind> &kinds) {
            std::size_t i = 0;
            for (auto &stage_cands : candidates)
                for (auto &c : stage_cands)
                    c.chosen = kinds[i++];
        };

        const auto seed_kinds = snapshot();
        struct Variant { bool rcMax; bool keepOffload; };
        const Variant variants[] = {
            {true, true}, {false, false}, {true, false}};
        // All three variants are scored against the same baseline as
        // one concurrent batch; the fixed tie-break (best measured
        // throughput, lowest variant index on ties) makes the choice
        // independent of evaluation order and thread count.
        std::vector<CompactionPlan> trials;
        std::vector<std::vector<Kind>> trial_kinds;
        for (const auto &v : variants) {
            restore(seed_kinds);
            trials.push_back(apply_variant(v.rcMax, v.keepOffload));
            trial_kinds.push_back(snapshot());
        }
        restore(seed_kinds);
        driver.setPruneBaseline(current.samplesPerSec,
                                cfg.acceptGain);
        auto outcomes = driver.evaluate(trials);
        int best = SearchDriver::pickBest(
            outcomes, current.samplesPerSec, cfg.acceptGain);
        if (best >= 0) {
            auto b = static_cast<std::size_t>(best);
            restore(trial_kinds[b]);
            if (!variants[b].keepOffload)
                offload_opt.assign(offload_opt.size(), false);
            plan = std::move(trials[b]);
            current = std::move(outcomes[b].report);
            ++result.iterations;
        }
    }

    // ... then fine-tune with bounded per-step flips.
    for (int iter = 0; iter < cfg.maxIterations; ++iter) {
        std::vector<Candidate *> swaps;
        for (auto &stage_cands : candidates) {
            for (auto &c : stage_cands) {
                if (c.chosen == Kind::GpuCpuSwap)
                    swaps.push_back(&c);
            }
        }
        if (swaps.empty())
            break;
        std::stable_sort(swaps.begin(), swaps.end(),
                         [](const Candidate *a, const Candidate *b) {
                             return a->savings > b->savings;
                         });
        // Same trial-ladder shape as stage (5): prefixes of the
        // savings-ordered swap list, all scored concurrently.
        std::vector<std::vector<Candidate *>> trial_flips;
        std::vector<CompactionPlan> trials;
        for (int batch = cfg.d2dBatchPerStep; batch >= 1;
             batch /= 2) {
            std::size_t take = std::min(
                static_cast<std::size_t>(batch), swaps.size());
            // Equal prefixes repeat a plan: a cache hit, not a skip
            // (see the flip-batch ladder above).
            std::vector<Candidate *> flips(swaps.begin(),
                                           swaps.begin() +
                                               static_cast<long>(
                                                   take));
            for (Candidate *c : flips)
                c->chosen = Kind::Recompute;
            trials.push_back(
                materialize(candidates, offload_opt, offload_stash,
                            result.mapping, cfg.d2dStriping));
            for (Candidate *c : flips)
                c->chosen = Kind::GpuCpuSwap;
            trial_flips.push_back(std::move(flips));
        }
        driver.setPruneBaseline(current.samplesPerSec,
                                cfg.acceptGain);
        auto outcomes = driver.evaluate(trials);
        int best = SearchDriver::pickBest(
            outcomes, current.samplesPerSec, cfg.acceptGain);
        if (best < 0)
            break;
        auto b = static_cast<std::size_t>(best);
        for (Candidate *c : trial_flips[b])
            c->chosen = Kind::Recompute;
        plan = std::move(trials[b]);
        current = std::move(outcomes[b].report);
        ++result.iterations;
    }

    result.plan = std::move(plan);
    result.finalReport = std::move(current);
    result.feasible = true;
    result.verification = verify::verifyPlan(
        topo, mdl, part, sched, result.plan,
        verifierOptions(exec_cfg));
    result.certificate = certify(topo, mdl, part, sched, result.plan,
                                 exec_cfg);
    record_search_stats();
    return result;
}

PlanResult
planD2dOnly(const hw::Topology &topo,
            const model::TransformerModel &mdl,
            const partition::Partition &part,
            const pipeline::Schedule &sched, PlannerConfig cfg,
            runtime::ExecutorConfig exec_cfg)
{
    PlanResult result;
    ProfileResult profile =
        profileJob(topo, mdl, part, sched, exec_cfg);
    const Bytes capacity = profile.usableCapacity;

    bool any_overflow = false;
    for (Bytes peak : profile.stagePeak)
        any_overflow |= peak > capacity;
    if (!any_overflow) {
        result.finalReport = std::move(profile.report);
        result.feasible = !result.finalReport.oom;
        result.verification = verify::verifyPlan(
            topo, mdl, part, sched, result.plan,
            verifierOptions(exec_cfg));
        result.certificate = certify(topo, mdl, part, sched,
                                     result.plan, exec_cfg);
        return result;
    }

    result.mapping = searchDeviceMapping(topo, profile.stagePeak,
                                         capacity, cfg.mapper);
    CostModel cost(topo, mdl.config().precision);
    auto candidates =
        collectCandidates(mdl, part, sched, profile, cost);

    std::map<int, Bytes> budget;
    for (const auto &[gpu, grants] : result.mapping.grants) {
        Bytes total = 0;
        for (const auto &g : grants)
            total += g.budget;
        budget[gpu] = total;
    }

    std::vector<bool> offload_opt(
        static_cast<std::size_t>(part.numStages()), false);
    std::vector<bool> offload_stash(
        static_cast<std::size_t>(part.numStages()), false);
    for (const auto &stage : part.stages) {
        auto s = static_cast<std::size_t>(stage.index);
        double over = static_cast<double>(profile.stagePeak[s]) *
                          (1.0 + cfg.headroom) -
                      static_cast<double>(capacity);
        if (over <= 0)
            continue;
        Bytes need = static_cast<Bytes>(over);
        int gpu = result.mapping.stageToGpu.empty()
                      ? stage.index
                      : result.mapping.stageToGpu[s];
        for (auto &c : candidates[s]) {
            if (need <= 0)
                break;
            auto it = budget.find(gpu);
            // A class may be partially covered (per-instance
            // fallback at runtime); require room for at least one
            // instance so the assignment is not a pure no-op.
            if (it == budget.end() || it->second < c.stash)
                continue;
            Bytes debit = std::min(it->second, c.savings);
            it->second -= debit;
            c.chosen = Kind::D2dSwap;
            need -= debit;
        }
        // D2D-only cannot fall back: leftover need means OOM, which
        // the emulation below will surface.
    }

    CompactionPlan plan =
        materialize(candidates, offload_opt, offload_stash,
                    result.mapping, cfg.d2dStriping);
    result.finalReport =
        emulate(topo, mdl, part, sched, plan, exec_cfg);
    result.feasible = !result.finalReport.oom;
    result.plan = std::move(plan);
    result.verification = verify::verifyPlan(
        topo, mdl, part, sched, result.plan,
        verifierOptions(exec_cfg));
    result.certificate = certify(topo, mdl, part, sched, result.plan,
                                 exec_cfg);
    return result;
}

} // namespace planner
} // namespace mpress
