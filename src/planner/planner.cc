#include "planner/planner.hh"

#include <algorithm>
#include <set>

#include "planner/portfolio.hh"
#include "util/logging.hh"

namespace mpress {
namespace planner {

using compaction::CompactionPlan;
using compaction::Kind;
using memory::TensorRef;

ProfileResult
profileJob(const hw::Topology &topo,
           const model::TransformerModel &mdl,
           const partition::Partition &part,
           const pipeline::Schedule &sched,
           runtime::ExecutorConfig exec_cfg)
{
    exec_cfg.recordLiveness = true;
    exec_cfg.failFastOnOom = false;  // measure true demand
    ProfileResult out;
    out.report = runtime::runTraining(topo, mdl, part, sched, {},
                                      exec_cfg);
    out.usableCapacity = static_cast<Bytes>(
        static_cast<double>(topo.gpu().memCapacity) /
        exec_cfg.memOverheadFactor);
    // With the identity mapping, stage s ran on GPU s.
    out.stagePeak.resize(static_cast<std::size_t>(part.numStages()));
    for (int s = 0; s < part.numStages(); ++s) {
        out.stagePeak[static_cast<std::size_t>(s)] =
            out.report.gpus[static_cast<std::size_t>(s)].peak;
    }
    return out;
}

CompactionPlan
recomputeAllPlan(const partition::Partition &part)
{
    CompactionPlan plan;
    for (const auto &stage : part.stages) {
        for (std::size_t l = stage.firstLayer; l <= stage.lastLayer;
             ++l) {
            plan.activations[{stage.index, static_cast<int>(l)}] =
                Kind::Recompute;
        }
    }
    return plan;
}

CompactionPlan
gpuCpuSwapAllPlan(const partition::Partition &part)
{
    CompactionPlan plan;
    plan.offloadOptState.assign(
        static_cast<std::size_t>(part.numStages()), true);
    plan.offloadWeightStash.assign(
        static_cast<std::size_t>(part.numStages()), true);
    for (const auto &stage : part.stages) {
        for (std::size_t l = stage.firstLayer; l <= stage.lastLayer;
             ++l) {
            plan.activations[{stage.index, static_cast<int>(l)}] =
                Kind::GpuCpuSwap;
        }
    }
    return plan;
}

namespace {

/** Collect per-stage candidates (portfolio.hh's Candidate — the
 *  state the refinement strategies evolve) from a profile. */
std::vector<std::vector<Candidate>>
collectCandidates(const model::TransformerModel &mdl,
                  const partition::Partition &part,
                  const pipeline::Schedule &sched,
                  const ProfileResult &profile,
                  const CostModel &cost)
{
    std::vector<std::vector<Candidate>> per_stage(
        static_cast<std::size_t>(part.numStages()));
    for (const auto &stage : part.stages) {
        int inflight = sched.maxInFlight(stage.index);
        for (std::size_t l = stage.firstLayer; l <= stage.lastLayer;
             ++l) {
            const auto &layer = mdl.layer(l);
            if (layer.activationStash <= 0)
                continue;
            Candidate c;
            c.ref = {stage.index, static_cast<int>(l)};
            c.stash = layer.activationStash;
            c.savings = layer.activationStash * inflight;
            const auto *li = profile.report.liveness.find(c.ref);
            c.interval = li ? li->minInterval() : 0;
            c.recomputeExtra = cost.recomputeExtra(layer);
            c.gpuCpuExtra = cost.gpuCpuSwapExtra(
                layer.activationStash, c.interval);
            per_stage[static_cast<std::size_t>(stage.index)]
                .push_back(c);
        }
    }
    return per_stage;
}

runtime::TrainingReport
emulate(const hw::Topology &topo, const model::TransformerModel &mdl,
        const partition::Partition &part,
        const pipeline::Schedule &sched, const CompactionPlan &plan,
        runtime::ExecutorConfig exec_cfg)
{
    exec_cfg.recordLiveness = false;
    exec_cfg.failFastOnOom = true;
    return runtime::runTraining(topo, mdl, part, sched, plan,
                                exec_cfg);
}

/** Verifier options consistent with the emulator's capacity model. */
verify::Options
verifierOptions(const runtime::ExecutorConfig &exec_cfg)
{
    verify::Options opts;
    opts.memOverheadFactor = exec_cfg.memOverheadFactor;
    return opts;
}

/** Analysis certificate of @p plan, consistent with the emulator's
 *  capacity and swap-lookahead model. */
analysis::AnalysisCertificate
certify(const hw::Topology &topo, const model::TransformerModel &mdl,
        const partition::Partition &part,
        const pipeline::Schedule &sched, const CompactionPlan &plan,
        const runtime::ExecutorConfig &exec_cfg)
{
    analysis::AnalysisOptions aopts;
    aopts.memOverheadFactor = exec_cfg.memOverheadFactor;
    aopts.swapInLookahead = exec_cfg.swapInLookahead;
    return analysis::analyzePlan(topo, mdl, part, sched, plan,
                                 aopts);
}

/** Drop spare grants whose exporter GPU has no D2D-swapped
 *  activation class left in the final plan.  The refine ladders
 *  un-swap classes freely, which can strand the mapper's eager
 *  grants (Sec III-C grants everything up-front); dead grants pin
 *  importer spare memory and trip the verifier's orphan/cycle rules
 *  in strict mode.  Pruning is a pure function of the plan, so it
 *  preserves byte-determinism across the search matrix. */
void
pruneDeadGrants(CompactionPlan &plan)
{
    std::set<int> live;
    for (const auto &[ref, kind] : plan.activations)
        if (kind == Kind::D2dSwap)
            live.insert(plan.gpuForStage(ref.stage));
    for (auto it = plan.spareGrants.begin();
         it != plan.spareGrants.end();) {
        if (!live.count(it->first))
            it = plan.spareGrants.erase(it);
        else
            ++it;
    }
}

} // namespace

PlanResult
planMPress(const hw::Topology &topo,
           const model::TransformerModel &mdl,
           const partition::Partition &part,
           const pipeline::Schedule &sched, PlannerConfig cfg,
           runtime::ExecutorConfig exec_cfg)
{
    PlanResult result;

    // (1) Profile.
    ProfileResult profile =
        profileJob(topo, mdl, part, sched, exec_cfg);
    const Bytes capacity = profile.usableCapacity;

    // No memory pressure: train as-is.
    bool any_overflow = false;
    for (Bytes peak : profile.stagePeak)
        any_overflow |= peak > capacity;
    if (!any_overflow) {
        result.finalReport = std::move(profile.report);
        result.feasible = !result.finalReport.oom;
        result.verification = verify::verifyPlan(
            topo, mdl, part, sched, result.plan,
            verifierOptions(exec_cfg));
        result.certificate = certify(topo, mdl, part, sched,
                                     result.plan, exec_cfg);
        return result;
    }

    // The worker pool serves both the mapping scan and the trial
    // batches of the refinement race.  cfg.threads is clamped to the
    // machine's core count: oversubscribed workers only add context
    // switches to the CPU-bound scan/emulation bodies (the measured
    // cause of the former threads:4 regression), and the mapper and
    // driver are thread-count-deterministic, so clamping can never
    // change the plan.
    util::ThreadPool pool(
        std::min(cfg.threads, util::ThreadPool::hardwareThreads()));

    // (2) Device mapping + spare-memory grants.
    result.mapping = searchDeviceMapping(topo, profile.stagePeak,
                                         capacity, cfg.mapper, {},
                                         &pool);

    CostModel cost(topo, mdl.config().precision);
    auto candidates =
        collectCandidates(mdl, part, sched, profile, cost);

    // The refinement race evaluates batches of independent trial
    // plans; the driver scores them as concurrent emulator runs
    // (per-worker topology + engine arenas, per-trial executors) and
    // the fixed tie-break keeps the result identical for every thread
    // count.  It is built before the seed emulation so the
    // seed/escalation runs land in the trial cache and later
    // identical variants hit.
    SearchDriver driver(topo, mdl, part, sched, exec_cfg, pool);
    driver.setCacheEnabled(cfg.trialCache);
    driver.setAnalyticPrune(cfg.analyticPrune);
    if (cfg.sharedCache != nullptr)
        driver.setSharedCache(cfg.sharedCache);
    auto record_search_stats = [&result, &driver]() {
        TrialCacheStats stats = driver.cacheStats();
        result.trialCacheHits = stats.hits;
        result.trialCacheMisses = stats.misses;
        PruneStats prune = driver.pruneStats();
        result.analyticScored = prune.scored;
        result.analyticPruned = prune.pruned();
        result.arenaShrinks = driver.arenaShrinks();
    };

    // (3) Seed assignment per overflowing stage.
    std::vector<bool> offload_opt(
        static_cast<std::size_t>(part.numStages()), false);
    std::vector<bool> offload_stash(
        static_cast<std::size_t>(part.numStages()), false);
    for (const auto &stage : part.stages) {
        auto s = static_cast<std::size_t>(stage.index);
        double over = static_cast<double>(profile.stagePeak[s]) *
                          (1.0 + cfg.headroom) -
                      static_cast<double>(capacity);
        if (over <= 0)
            continue;
        Bytes need = static_cast<Bytes>(over);

        // Activations first, cheapest critical-path cost first.  The
        // per-tensor swap cost is only hidden while the stage's PCIe
        // channel keeps up: each microbatch gives the stage roughly
        // its fwd+bwd compute time of channel budget, and swap
        // round-trips beyond that budget pay full price.  Without
        // this, a long live interval makes every tensor look free to
        // swap and the seed plan saturates PCIe.
        Tick pcie_budget = static_cast<Tick>(
            0.9 * static_cast<double>(cost.topology().gpu().computeTime(
                      3.0 * stage.fwdFlops,
                      mdl.config().precision)));
        auto &cands = candidates[s];
        std::stable_sort(cands.begin(), cands.end(),
                         [](const Candidate &a, const Candidate &b) {
                             return std::min(a.recomputeExtra,
                                             a.gpuCpuExtra) <
                                    std::min(b.recomputeExtra,
                                             b.gpuCpuExtra);
                         });
        for (auto &c : cands) {
            if (need <= 0)
                break;
            Tick round_trip = 2 * cost.gpuCpuSwapTime(c.stash);
            Tick gcs_extra = pcie_budget >= round_trip
                                 ? c.gpuCpuExtra
                                 : std::max(c.gpuCpuExtra, round_trip);
            if (c.recomputeExtra <= gcs_extra) {
                c.chosen = Kind::Recompute;
            } else {
                c.chosen = Kind::GpuCpuSwap;
                pcie_budget -= round_trip;
            }
            // Record the contended cost so refinement can target it.
            c.gpuCpuExtra = gcs_extra;
            need -= c.savings;
        }

        // Optimizer state goes to the host only when activation
        // savings cannot cover the overflow (Table IV: small jobs
        // keep the optimizer resident, huge jobs must offload).
        if (need > 0) {
            offload_opt[s] = true;
            need -= stage.optStateBytes;
        }
        // Last resort within GPU-CPU swap: park stashed weight
        // versions (PipeDream) in host memory.
        int versions = sched.weightVersions(stage.index);
        if (need > 0 && versions > 2) {
            offload_stash[s] = true;
            need -= stage.paramBytes * (versions - 2);
        }
    }

    // (4) Emulate the seed; escalate if it still OOMs.  Seed and
    // escalation runs go through the driver so they are memoized like
    // any other trial (the driver pins the same scoring config the
    // old emulate() helper forced, and planning stays fault-free).
    CompactionPlan plan =
        materializePlan(candidates, offload_opt, offload_stash,
                    result.mapping, cfg.d2dStriping);
    runtime::TrainingReport current =
        driver.evaluateOne(plan).report;
    int escalations = 0;
    while (current.oom && escalations < part.numStages() + 2) {
        // Escalate only on the stages mapped to the OOM GPU (or
        // everywhere once targeted escalation is exhausted): first
        // assign their remaining activation classes, then offload
        // their optimizer state.
        bool assigned_more = false;
        for (auto &stage_cands : candidates) {
            auto stage_idx = static_cast<std::size_t>(
                &stage_cands - candidates.data());
            bool target_stage =
                current.oomGpu < 0 ||
                plan.gpuForStage(static_cast<int>(stage_idx)) ==
                    current.oomGpu ||
                escalations >= part.numStages();
            if (!target_stage)
                continue;
            bool stage_assigned = false;
            for (auto &c : stage_cands) {
                if (c.chosen == Kind::None) {
                    // The seed's PCIe budget is already spent, so
                    // escalation prioritizes recomputation (the
                    // paper's Sec. III-D observation).
                    c.chosen = Kind::Recompute;
                    stage_assigned = true;
                }
            }
            if (!stage_assigned && !offload_opt[stage_idx]) {
                offload_opt[stage_idx] = true;
                stage_assigned = true;
            }
            if (!stage_assigned && !offload_stash[stage_idx] &&
                sched.weightVersions(static_cast<int>(stage_idx)) >
                    2) {
                offload_stash[stage_idx] = true;
                stage_assigned = true;
            }
            assigned_more |= stage_assigned;
        }
        if (!assigned_more)
            break;
        ++escalations;
        plan = materializePlan(candidates, offload_opt, offload_stash,
                    result.mapping, cfg.d2dStriping);
        current = driver.evaluateOne(plan).report;
    }
    if (current.oom) {
        result.plan = std::move(plan);
        result.finalReport = std::move(current);
        result.feasible = false;
        result.verification = verify::verifyPlan(
            topo, mdl, part, sched, result.plan,
            verifierOptions(exec_cfg));
        result.certificate = certify(topo, mdl, part, sched,
                                     result.plan, exec_cfg);
        record_search_stats();
        return result;
    }

    // (4a) Re-map with post-compaction demand.  The profile-based
    // mapping saw every stage overflowing, so importers had nothing
    // to lend; once the seed plan compacts the heavy stages, the
    // emulator-measured peaks reveal the real spare memory, and a
    // second mapping pass turns it into D2D grants (the emulator
    // feedback loop of Fig. 5).
    {
        std::vector<Bytes> demand2(
            static_cast<std::size_t>(part.numStages()), 0);
        std::vector<Bytes> desire2(
            static_cast<std::size_t>(part.numStages()), 0);
        Bytes total_spare = 0;
        for (int s = 0; s < part.numStages(); ++s) {
            Bytes peak =
                current.gpus[static_cast<std::size_t>(
                                 plan.gpuForStage(s))]
                    .peak;
            demand2[static_cast<std::size_t>(s)] = peak;
            if (peak < capacity) {
                total_spare += static_cast<Bytes>(
                    static_cast<double>(capacity - peak) *
                    cfg.mapper.spareSafety);
            }
            for (const auto &c :
                 candidates[static_cast<std::size_t>(s)]) {
                if (c.chosen == Kind::Recompute ||
                    c.chosen == Kind::GpuCpuSwap)
                    desire2[static_cast<std::size_t>(s)] += c.savings;
            }
        }
        // Throughput follows the slowest stage, so spare must be
        // spread fairly: capping each stage's desire near the fair
        // share relieves compaction pressure everywhere instead of
        // fully draining a few stages while the rest stay
        // recompute-bound.
        Bytes fair = static_cast<Bytes>(
            1.2 * static_cast<double>(total_spare) /
            part.numStages());
        for (auto &d : desire2)
            d = std::min(d, fair);
        MappingResult mapping2 = searchDeviceMapping(
            topo, demand2, capacity, cfg.mapper, desire2, &pool);
        CompactionPlan plan2 =
            materializePlan(candidates, offload_opt, offload_stash,
                        mapping2, cfg.d2dStriping);
        // Unlike refinement trials the re-map may accept a slight
        // measured regression: better grants unlock D2D flips later.
        TrialOutcome out2 = driver.evaluateOne(plan2);
        if (!out2.report.oom && out2.verified &&
            out2.report.samplesPerSec >=
                current.samplesPerSec * (1.0 - cfg.acceptGain)) {
            result.mapping = std::move(mapping2);
            plan = std::move(plan2);
            current = std::move(out2.report);
        }
    }

    // (5) Refinement race (portfolio.cc): the greedy wavefront — the
    // D2D flip ladder, the three coarse variants, then the fine-tune
    // un-swap ladder — plus, when cfg.portfolio is set, a
    // simulated-annealing walker and an analysis-guided best-first
    // explorer, all racing on this driver until exhaustion or the
    // anytime deadline.  The winner is deterministic and never worse
    // than the seed plan.
    PlanState seed_state;
    seed_state.candidates = std::move(candidates);
    seed_state.offloadOpt = std::move(offload_opt);
    seed_state.offloadStash = std::move(offload_stash);
    RaceResult race =
        racePortfolio(driver, topo, mdl, part, sched, result.mapping,
                      cfg, seed_state, plan, current);

    pruneDeadGrants(race.plan);
    result.plan = std::move(race.plan);
    result.finalReport = std::move(race.report);
    result.iterations = race.iterations;
    result.winnerStrategy = race.winner;
    result.strategyStats = std::move(race.stats);
    result.feasible = true;
    result.verification = verify::verifyPlan(
        topo, mdl, part, sched, result.plan,
        verifierOptions(exec_cfg));
    result.certificate = certify(topo, mdl, part, sched, result.plan,
                                 exec_cfg);
    record_search_stats();
    return result;
}

PlanResult
planD2dOnly(const hw::Topology &topo,
            const model::TransformerModel &mdl,
            const partition::Partition &part,
            const pipeline::Schedule &sched, PlannerConfig cfg,
            runtime::ExecutorConfig exec_cfg)
{
    PlanResult result;
    ProfileResult profile =
        profileJob(topo, mdl, part, sched, exec_cfg);
    const Bytes capacity = profile.usableCapacity;

    bool any_overflow = false;
    for (Bytes peak : profile.stagePeak)
        any_overflow |= peak > capacity;
    if (!any_overflow) {
        result.finalReport = std::move(profile.report);
        result.feasible = !result.finalReport.oom;
        result.verification = verify::verifyPlan(
            topo, mdl, part, sched, result.plan,
            verifierOptions(exec_cfg));
        result.certificate = certify(topo, mdl, part, sched,
                                     result.plan, exec_cfg);
        return result;
    }

    // Same oversubscription clamp as planMPress (the mapper is
    // thread-count-deterministic, so the clamp cannot change it).
    util::ThreadPool pool(
        std::min(cfg.threads, util::ThreadPool::hardwareThreads()));
    result.mapping = searchDeviceMapping(topo, profile.stagePeak,
                                         capacity, cfg.mapper, {},
                                         &pool);
    CostModel cost(topo, mdl.config().precision);
    auto candidates =
        collectCandidates(mdl, part, sched, profile, cost);

    std::map<int, Bytes> budget;
    for (const auto &[gpu, grants] : result.mapping.grants) {
        Bytes total = 0;
        for (const auto &g : grants)
            total += g.budget;
        budget[gpu] = total;
    }

    std::vector<bool> offload_opt(
        static_cast<std::size_t>(part.numStages()), false);
    std::vector<bool> offload_stash(
        static_cast<std::size_t>(part.numStages()), false);
    for (const auto &stage : part.stages) {
        auto s = static_cast<std::size_t>(stage.index);
        double over = static_cast<double>(profile.stagePeak[s]) *
                          (1.0 + cfg.headroom) -
                      static_cast<double>(capacity);
        if (over <= 0)
            continue;
        Bytes need = static_cast<Bytes>(over);
        int gpu = result.mapping.stageToGpu.empty()
                      ? stage.index
                      : result.mapping.stageToGpu[s];
        for (auto &c : candidates[s]) {
            if (need <= 0)
                break;
            auto it = budget.find(gpu);
            // A class may be partially covered (per-instance
            // fallback at runtime); require room for at least one
            // instance so the assignment is not a pure no-op.
            if (it == budget.end() || it->second < c.stash)
                continue;
            Bytes debit = std::min(it->second, c.savings);
            it->second -= debit;
            c.chosen = Kind::D2dSwap;
            need -= debit;
        }
        // D2D-only cannot fall back: leftover need means OOM, which
        // the emulation below will surface.
    }

    CompactionPlan plan =
        materializePlan(candidates, offload_opt, offload_stash,
                    result.mapping, cfg.d2dStriping);
    pruneDeadGrants(plan);
    result.finalReport =
        emulate(topo, mdl, part, sched, plan, exec_cfg);
    result.feasible = !result.finalReport.oom;
    result.plan = std::move(plan);
    result.verification = verify::verifyPlan(
        topo, mdl, part, sched, result.plan,
        verifierOptions(exec_cfg));
    result.certificate = certify(topo, mdl, part, sched, result.plan,
                                 exec_cfg);
    return result;
}

} // namespace planner
} // namespace mpress
