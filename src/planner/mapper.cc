#include "planner/mapper.hh"

#include <algorithm>
#include <numeric>

#include "compaction/striping.hh"
#include "util/logging.hh"

namespace mpress {
namespace planner {

namespace {

using compaction::SpareGrant;

/**
 * Assign importer spare budgets to exporters for a fixed placement.
 *
 * Each importer's usable spare is split among the NVLink-reachable
 * exporters in proportion to (exporter overflow x lane count), which
 * both drains big exporters faster and prefers fat links — the
 * "assign_mem" step of Figure 6, with the per-GPU plans combined by
 * proportional sharing instead of exhaustive permutation.
 */
std::map<int, std::vector<SpareGrant>>
assignSpare(const hw::Topology &topo,
            const std::vector<int> &stage_to_gpu,
            const std::vector<Bytes> &stage_demand, Bytes capacity,
            double spare_safety,
            const std::vector<Bytes> &stage_desire)
{
    const int num_stages = static_cast<int>(stage_demand.size());
    std::vector<Bytes> demand_on_gpu(
        static_cast<std::size_t>(topo.numGpus()), 0);
    for (int s = 0; s < num_stages; ++s) {
        demand_on_gpu[static_cast<std::size_t>(stage_to_gpu[
            static_cast<std::size_t>(s)])] +=
            stage_demand[static_cast<std::size_t>(s)];
    }

    auto overflow_of = [&](int gpu) {
        Bytes d = demand_on_gpu[static_cast<std::size_t>(gpu)];
        return d > capacity ? d - capacity : 0;
    };
    auto spare_of = [&](int gpu) {
        Bytes d = demand_on_gpu[static_cast<std::size_t>(gpu)];
        Bytes spare = d < capacity ? capacity - d : 0;
        return static_cast<Bytes>(static_cast<double>(spare) *
                                  spare_safety);
    };

    // Each exporter wants comfortably more budget than its raw
    // overflow: swap classes are whole layers with all in-flight
    // instances resident on importers at once, so the concurrent
    // footprint exceeds the peak overshoot.  An explicit desire
    // vector (the planner's post-compaction re-map) overrides the
    // overflow heuristic.
    std::vector<Bytes> desire(
        static_cast<std::size_t>(topo.numGpus()), 0);
    if (stage_desire.empty()) {
        for (int exp = 0; exp < topo.numGpus(); ++exp) {
            Bytes over = overflow_of(exp);
            if (over > 0)
                desire[static_cast<std::size_t>(exp)] =
                    2 * over + 2 * util::kGB;
        }
    } else {
        for (int s = 0; s < num_stages; ++s) {
            desire[static_cast<std::size_t>(
                stage_to_gpu[static_cast<std::size_t>(s)])] +=
                stage_desire[static_cast<std::size_t>(s)];
        }
    }

    // Remaining spare per importer and its contention (how many
    // exporters can reach it).
    std::vector<Bytes> spare(
        static_cast<std::size_t>(topo.numGpus()), 0);
    std::vector<int> contention(
        static_cast<std::size_t>(topo.numGpus()), 0);
    for (int imp = 0; imp < topo.numGpus(); ++imp) {
        spare[static_cast<std::size_t>(imp)] = spare_of(imp);
        for (int exp = 0; exp < topo.numGpus(); ++exp) {
            if (desire[static_cast<std::size_t>(exp)] > 0 &&
                topo.nvlinkLanes(exp, imp) > 0)
                ++contention[static_cast<std::size_t>(imp)];
        }
    }

    // Exporter-major greedy, big demands first; each exporter drains
    // its least-contended importers before touching shared pools, so
    // exporters with few reachable peers are not starved.
    std::vector<int> exporters;
    for (int exp = 0; exp < topo.numGpus(); ++exp) {
        if (desire[static_cast<std::size_t>(exp)] > 0)
            exporters.push_back(exp);
    }
    std::stable_sort(exporters.begin(), exporters.end(),
                     [&](int a, int b) {
                         return desire[static_cast<std::size_t>(a)] >
                                desire[static_cast<std::size_t>(b)];
                     });

    std::map<int, std::vector<SpareGrant>> grants;
    for (int exp : exporters) {
        std::vector<int> importers;
        for (int imp = 0; imp < topo.numGpus(); ++imp) {
            if (topo.nvlinkLanes(exp, imp) > 0 &&
                spare[static_cast<std::size_t>(imp)] > 0)
                importers.push_back(imp);
        }
        std::stable_sort(
            importers.begin(), importers.end(), [&](int a, int b) {
                auto ca = contention[static_cast<std::size_t>(a)];
                auto cb = contention[static_cast<std::size_t>(b)];
                if (ca != cb)
                    return ca < cb;
                return spare[static_cast<std::size_t>(a)] >
                       spare[static_cast<std::size_t>(b)];
            });
        auto &want = desire[static_cast<std::size_t>(exp)];
        for (int imp : importers) {
            if (want <= 0)
                break;
            Bytes take = std::min(
                spare[static_cast<std::size_t>(imp)], want);
            if (take <= 0)
                continue;
            spare[static_cast<std::size_t>(imp)] -= take;
            want -= take;
            grants[exp].push_back({imp, take});
        }
    }

    // Order each exporter's grants by lane count (fat links first) so
    // the runtime's striping prefers them.
    for (auto &[exp, list] : grants) {
        std::stable_sort(list.begin(), list.end(),
                         [&](const SpareGrant &a, const SpareGrant &b) {
                             return topo.nvlinkLanes(exp,
                                                     a.importerGpu) >
                                    topo.nvlinkLanes(exp,
                                                     b.importerGpu);
                         });
    }
    return grants;
}

/** Coverage and worst-exporter drain time for a candidate. */
struct Evaluation
{
    double coverage = 1.0;
    Tick worstDrain = 0;
    int brokenAdjacency = 0;
};

Evaluation
evaluate(const hw::Topology &topo,
         const std::vector<int> &stage_to_gpu,
         const std::vector<Bytes> &stage_demand, Bytes capacity,
         const std::map<int, std::vector<SpareGrant>> &grants)
{
    const int num_stages = static_cast<int>(stage_demand.size());
    std::vector<Bytes> demand_on_gpu(
        static_cast<std::size_t>(topo.numGpus()), 0);
    for (int s = 0; s < num_stages; ++s) {
        demand_on_gpu[static_cast<std::size_t>(stage_to_gpu[
            static_cast<std::size_t>(s)])] +=
            stage_demand[static_cast<std::size_t>(s)];
    }

    Evaluation ev;
    Bytes total_overflow = 0, covered = 0;
    for (int gpu = 0; gpu < topo.numGpus(); ++gpu) {
        Bytes d = demand_on_gpu[static_cast<std::size_t>(gpu)];
        if (d <= capacity)
            continue;
        Bytes over = d - capacity;
        total_overflow += over;

        auto it = grants.find(gpu);
        if (it == grants.end())
            continue;
        Bytes granted = 0;
        for (const auto &g : it->second)
            granted += g.budget;
        Bytes placed = std::min(over, granted);
        covered += placed;
        if (placed > 0) {
            auto plan = compaction::makeStripePlan(topo, gpu,
                                                   it->second, placed);
            if (!plan.empty()) {
                ev.worstDrain = std::max(
                    ev.worstDrain,
                    compaction::stripePlanTime(topo, gpu, plan));
            }
        }
    }
    ev.coverage =
        total_overflow == 0
            ? 1.0
            : static_cast<double>(covered) /
                  static_cast<double>(total_overflow);

    for (int s = 0; s + 1 < num_stages; ++s) {
        int a = stage_to_gpu[static_cast<std::size_t>(s)];
        int b = stage_to_gpu[static_cast<std::size_t>(s + 1)];
        if (topo.nvlinkLanes(a, b) == 0)
            ++ev.brokenAdjacency;
    }
    return ev;
}

double
scoreOf(const Evaluation &ev, const MapperConfig &config)
{
    // Coverage dominates; among full-coverage mappings the fastest
    // drain wins (the reciprocal-of-max-cost score of Figure 6);
    // broken pipeline adjacency is charged like extra drain time.
    double drain_ms = util::toMs(ev.worstDrain) +
                      config.adjacencyPenaltyMs * ev.brokenAdjacency;
    return ev.coverage * 1e6 - drain_ms;
}

} // namespace

MappingResult
searchDeviceMapping(const hw::Topology &topo,
                    const std::vector<Bytes> &stage_demand,
                    Bytes capacity, MapperConfig config,
                    const std::vector<Bytes> &stage_desire)
{
    const int num_stages = static_cast<int>(stage_demand.size());
    if (num_stages > topo.numGpus())
        util::fatal("more stages (%d) than GPUs (%d)", num_stages,
                    topo.numGpus());

    MappingResult best;

    // 8! placements are cheap; beyond 8 GPUs the factorial explodes,
    // so clusters keep the identity placement (stages already follow
    // the node chain).
    if (topo.symmetric() || !config.searchPlacement ||
        topo.numGpus() > 8) {
        // Switch fabrics make every placement equivalent; with the
        // search disabled we likewise keep the identity mapping.
        // Either way all spare memory is granted (Sec. III-C).
        std::vector<int> identity(
            static_cast<std::size_t>(num_stages));
        std::iota(identity.begin(), identity.end(), 0);
        auto grants = assignSpare(topo, identity, stage_demand,
                                  capacity, config.spareSafety,
                                  stage_desire);
        auto ev = evaluate(topo, identity, stage_demand, capacity,
                           grants);
        best.stageToGpu = identity;
        best.grants = std::move(grants);
        best.coverage = ev.coverage;
        best.score = scoreOf(ev, config);
        best.evaluated = 1;
        return best;
    }

    std::vector<int> perm(static_cast<std::size_t>(topo.numGpus()));
    std::iota(perm.begin(), perm.end(), 0);
    long evaluated = 0;
    bool have_best = false;
    do {
        std::vector<int> stage_to_gpu(
            perm.begin(), perm.begin() + num_stages);
        auto grants = assignSpare(topo, stage_to_gpu, stage_demand,
                                  capacity, config.spareSafety,
                                  stage_desire);
        auto ev = evaluate(topo, stage_to_gpu, stage_demand, capacity,
                           grants);
        double score = scoreOf(ev, config);
        ++evaluated;
        if (!have_best || score > best.score) {
            have_best = true;
            best.stageToGpu = std::move(stage_to_gpu);
            best.grants = std::move(grants);
            best.coverage = ev.coverage;
            best.score = score;
        }
    } while (std::next_permutation(perm.begin(), perm.end()));

    best.evaluated = evaluated;
    return best;
}

} // namespace planner
} // namespace mpress
