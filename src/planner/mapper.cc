#include "planner/mapper.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "compaction/striping.hh"
#include "util/logging.hh"
#include "util/pool.hh"

namespace mpress {
namespace planner {

namespace {

using compaction::SpareGrant;

/** Stable insertion sort for the scan's tiny (<= numGpus) arrays:
 *  the same order std::stable_sort produces, without its temporary
 *  merge buffer — two of these run per evaluated placement. */
template <typename T, typename Less>
void
stableSortSmall(std::vector<T> &v, Less less)
{
    for (std::size_t i = 1; i < v.size(); ++i) {
        T val = v[i];
        std::size_t j = i;
        while (j > 0 && less(val, v[j - 1])) {
            v[j] = v[j - 1];
            --j;
        }
        v[j] = std::move(val);
    }
}

/** Dense lane-count matrix, read-only during the scan.  The topology
 *  accessor is cheap but sits in the innermost loops (contention is
 *  O(n^2) lookups per placement, x 40320 placements); one flat copy
 *  keeps the scan in cache.  Lane counts come from pathLanes(), so on
 *  a cluster a cross-node pair shows its (thin) NIC path instead of
 *  zero — cross-node donors are reachable, just unattractive. */
struct LaneMatrix
{
    int n = 0;
    std::vector<int> lanes;
    std::vector<int> node;

    explicit LaneMatrix(const hw::Topology &topo)
        : n(topo.numGpus()),
          lanes(static_cast<std::size_t>(n) * static_cast<std::size_t>(n)),
          node(static_cast<std::size_t>(n))
    {
        for (int a = 0; a < n; ++a) {
            node[static_cast<std::size_t>(a)] = topo.nodeOf(a);
            for (int b = 0; b < n; ++b)
                lanes[idx(a, b)] = topo.pathLanes(a, b);
        }
    }

    std::size_t
    idx(int a, int b) const
    {
        return static_cast<std::size_t>(a) *
                   static_cast<std::size_t>(n) +
               static_cast<std::size_t>(b);
    }

    int at(int a, int b) const { return lanes[idx(a, b)]; }

    bool sameNode(int a, int b) const
    {
        return node[static_cast<std::size_t>(a)] ==
               node[static_cast<std::size_t>(b)];
    }
};

/** Coverage and worst-exporter drain time for a candidate. */
struct Evaluation
{
    double coverage = 1.0;
    Tick worstDrain = 0;
    int brokenAdjacency = 0;
};

/**
 * Preallocated buffers for one placement evaluation, reused across a
 * whole scan chunk.  The original implementation built five vectors
 * and a std::map per permutation (8! placements -> hundreds of
 * thousands of allocations per mapping call), which dominated the
 * planner's wall time; with the scratch the steady-state scan is
 * allocation-free except for stripe plans of contending candidates.
 */
struct Scratch
{
    std::vector<Bytes> demandOnGpu;
    std::vector<Bytes> desire;
    std::vector<Bytes> spare;
    std::vector<int> contention;
    std::vector<int> exporters;
    std::vector<int> importers;
    /** Per-exporter grant lists (indexed by GPU, cleared per eval). */
    std::vector<std::vector<SpareGrant>> grantList;
    std::vector<int> stageToGpu;

    explicit Scratch(int n)
        : demandOnGpu(static_cast<std::size_t>(n)),
          desire(static_cast<std::size_t>(n)),
          spare(static_cast<std::size_t>(n)),
          contention(static_cast<std::size_t>(n)),
          grantList(static_cast<std::size_t>(n))
    {
        exporters.reserve(static_cast<std::size_t>(n));
        importers.reserve(static_cast<std::size_t>(n));
        stageToGpu.reserve(static_cast<std::size_t>(n));
    }
};

/**
 * Assign importer spare budgets to exporters for a fixed placement.
 *
 * Each importer's usable spare is split among the NVLink-reachable
 * exporters in proportion to (exporter overflow x lane count), which
 * both drains big exporters faster and prefers fat links — the
 * "assign_mem" step of Figure 6, with the per-GPU plans combined by
 * proportional sharing instead of exhaustive permutation.  Results
 * land in @p ws (demandOnGpu and grantList feed the evaluation).
 */
void
assignSpareInto(Scratch &ws, const LaneMatrix &lanes,
                const std::vector<int> &stage_to_gpu,
                const std::vector<Bytes> &stage_demand, Bytes capacity,
                double spare_safety,
                const std::vector<Bytes> &stage_desire)
{
    const int n = lanes.n;
    const int num_stages = static_cast<int>(stage_demand.size());
    std::fill(ws.demandOnGpu.begin(), ws.demandOnGpu.end(), 0);
    for (int s = 0; s < num_stages; ++s) {
        ws.demandOnGpu[static_cast<std::size_t>(
            stage_to_gpu[static_cast<std::size_t>(s)])] +=
            stage_demand[static_cast<std::size_t>(s)];
    }

    auto overflow_of = [&](int gpu) {
        Bytes d = ws.demandOnGpu[static_cast<std::size_t>(gpu)];
        return d > capacity ? d - capacity : 0;
    };
    auto spare_of = [&](int gpu) {
        Bytes d = ws.demandOnGpu[static_cast<std::size_t>(gpu)];
        Bytes spare = d < capacity ? capacity - d : 0;
        return static_cast<Bytes>(static_cast<double>(spare) *
                                  spare_safety);
    };

    // Each exporter wants comfortably more budget than its raw
    // overflow: swap classes are whole layers with all in-flight
    // instances resident on importers at once, so the concurrent
    // footprint exceeds the peak overshoot.  An explicit desire
    // vector (the planner's post-compaction re-map) overrides the
    // overflow heuristic.
    std::fill(ws.desire.begin(), ws.desire.end(), 0);
    if (stage_desire.empty()) {
        for (int exp = 0; exp < n; ++exp) {
            Bytes over = overflow_of(exp);
            if (over > 0)
                ws.desire[static_cast<std::size_t>(exp)] =
                    2 * over + 2 * util::kGB;
        }
    } else {
        for (int s = 0; s < num_stages; ++s) {
            ws.desire[static_cast<std::size_t>(
                stage_to_gpu[static_cast<std::size_t>(s)])] +=
                stage_desire[static_cast<std::size_t>(s)];
        }
    }

    // Remaining spare per importer and its contention (how many
    // exporters can reach it).
    for (int imp = 0; imp < n; ++imp) {
        ws.spare[static_cast<std::size_t>(imp)] = spare_of(imp);
        int c = 0;
        for (int exp = 0; exp < n; ++exp) {
            if (ws.desire[static_cast<std::size_t>(exp)] > 0 &&
                lanes.at(exp, imp) > 0)
                ++c;
        }
        ws.contention[static_cast<std::size_t>(imp)] = c;
    }

    // Exporter-major greedy, big demands first; each exporter drains
    // its least-contended importers before touching shared pools, so
    // exporters with few reachable peers are not starved.
    ws.exporters.clear();
    for (int exp = 0; exp < n; ++exp) {
        if (ws.desire[static_cast<std::size_t>(exp)] > 0)
            ws.exporters.push_back(exp);
    }
    stableSortSmall(ws.exporters, [&](int a, int b) {
        return ws.desire[static_cast<std::size_t>(a)] >
               ws.desire[static_cast<std::size_t>(b)];
    });

    for (auto &list : ws.grantList)
        list.clear();
    for (int exp : ws.exporters) {
        ws.importers.clear();
        for (int imp = 0; imp < n; ++imp) {
            if (lanes.at(exp, imp) > 0 &&
                ws.spare[static_cast<std::size_t>(imp)] > 0)
                ws.importers.push_back(imp);
        }
        stableSortSmall(ws.importers, [&](int a, int b) {
            // Donor-axis priority: an intra-node importer always
            // outranks a cross-node one — every NVLink lane beats the
            // shared NIC tier, and cross-node grants also contend
            // with pipeline activation traffic on the same NICs.  On
            // a single node every pair ties here, so the pre-cluster
            // ordering (contention asc, spare desc) is unchanged.
            bool la = lanes.sameNode(exp, a);
            bool lb = lanes.sameNode(exp, b);
            if (la != lb)
                return la;
            auto ca = ws.contention[static_cast<std::size_t>(a)];
            auto cb = ws.contention[static_cast<std::size_t>(b)];
            if (ca != cb)
                return ca < cb;
            return ws.spare[static_cast<std::size_t>(a)] >
                   ws.spare[static_cast<std::size_t>(b)];
        });
        auto &want = ws.desire[static_cast<std::size_t>(exp)];
        for (int imp : ws.importers) {
            if (want <= 0)
                break;
            Bytes take = std::min(
                ws.spare[static_cast<std::size_t>(imp)], want);
            if (take <= 0)
                continue;
            ws.spare[static_cast<std::size_t>(imp)] -= take;
            want -= take;
            ws.grantList[static_cast<std::size_t>(exp)].push_back(
                {imp, take});
        }
    }

    // Order each exporter's grants intra-node first, then by lane
    // count (fat links first) so the runtime's striping prefers them.
    // A cross-node grant can show more raw lanes (many NICs) than a
    // sparse NVLink hop, but each NIC lane is slower and shared.
    for (int exp = 0; exp < n; ++exp) {
        auto &list = ws.grantList[static_cast<std::size_t>(exp)];
        if (list.size() > 1) {
            stableSortSmall(
                list, [&](const SpareGrant &a, const SpareGrant &b) {
                    bool la = lanes.sameNode(exp, a.importerGpu);
                    bool lb = lanes.sameNode(exp, b.importerGpu);
                    if (la != lb)
                        return la;
                    return lanes.at(exp, a.importerGpu) >
                           lanes.at(exp, b.importerGpu);
                });
        }
    }
}

/** Overflow coverage of the current ws grant assignment — the cheap
 *  part of the evaluation, and an upper bound on the score (drain
 *  time and adjacency penalties only subtract). */
double
coverageOf(const Scratch &ws, Bytes capacity)
{
    Bytes total_overflow = 0, covered = 0;
    const int n = static_cast<int>(ws.demandOnGpu.size());
    for (int gpu = 0; gpu < n; ++gpu) {
        Bytes d = ws.demandOnGpu[static_cast<std::size_t>(gpu)];
        if (d <= capacity)
            continue;
        Bytes over = d - capacity;
        total_overflow += over;
        const auto &gl = ws.grantList[static_cast<std::size_t>(gpu)];
        if (gl.empty())
            continue;
        Bytes granted = 0;
        for (const auto &g : gl)
            granted += g.budget;
        covered += std::min(over, granted);
    }
    return total_overflow == 0
               ? 1.0
               : static_cast<double>(covered) /
                     static_cast<double>(total_overflow);
}

/** The expensive half of the evaluation: stripe-plan drain times and
 *  pipeline adjacency, run only for candidates whose coverage bound
 *  can still beat the chunk's best score. */
Evaluation
finishEval(const hw::Topology &topo, const LaneMatrix &lanes,
           const Scratch &ws, const std::vector<int> &stage_to_gpu,
           Bytes capacity, double coverage)
{
    Evaluation ev;
    ev.coverage = coverage;
    const int n = lanes.n;
    const int num_stages = static_cast<int>(stage_to_gpu.size());
    for (int gpu = 0; gpu < n; ++gpu) {
        Bytes d = ws.demandOnGpu[static_cast<std::size_t>(gpu)];
        if (d <= capacity)
            continue;
        Bytes over = d - capacity;
        const auto &gl = ws.grantList[static_cast<std::size_t>(gpu)];
        if (gl.empty())
            continue;
        Bytes granted = 0;
        for (const auto &g : gl)
            granted += g.budget;
        Bytes placed = std::min(over, granted);
        if (placed > 0) {
            auto plan =
                compaction::makeStripePlan(topo, gpu, gl, placed);
            if (!plan.empty()) {
                ev.worstDrain = std::max(
                    ev.worstDrain,
                    compaction::stripePlanTime(topo, gpu, plan));
            }
        }
    }
    for (int s = 0; s + 1 < num_stages; ++s) {
        int a = stage_to_gpu[static_cast<std::size_t>(s)];
        int b = stage_to_gpu[static_cast<std::size_t>(s + 1)];
        if (lanes.at(a, b) == 0)
            ++ev.brokenAdjacency;
    }
    return ev;
}

double
scoreOf(const Evaluation &ev, const MapperConfig &config)
{
    // Coverage dominates; among full-coverage mappings the fastest
    // drain wins (the reciprocal-of-max-cost score of Figure 6);
    // broken pipeline adjacency is charged like extra drain time.
    double drain_ms = util::toMs(ev.worstDrain) +
                      config.adjacencyPenaltyMs * ev.brokenAdjacency;
    return ev.coverage * 1e6 - drain_ms;
}

/** Best candidate of one scan chunk, in chunk-lexicographic order. */
struct ChunkBest
{
    bool have = false;
    double score = 0.0;
    std::vector<int> stageToGpu;
    long evaluated = 0;
};

/**
 * Scan every placement that starts with @p prefix: the remaining
 * stage positions take the unused GPUs in lexicographic order, so
 * concatenating the chunks (prefixes in lexicographic order) yields
 * exactly the serial enumeration — the winner and its lowest-index
 * tie-break are independent of how chunks are scheduled on threads.
 */
ChunkBest
scanChunk(const hw::Topology &topo, const LaneMatrix &lanes,
          const std::vector<int> &prefix,
          const std::vector<Bytes> &stage_demand, Bytes capacity,
          const MapperConfig &config,
          const std::vector<Bytes> &stage_desire)
{
    const int n = lanes.n;
    const int k = static_cast<int>(stage_demand.size());
    ChunkBest best;
    Scratch ws(n);
    ws.stageToGpu.assign(static_cast<std::size_t>(k), -1);
    std::vector<char> used(static_cast<std::size_t>(n), 0);
    for (std::size_t i = 0; i < prefix.size(); ++i) {
        ws.stageToGpu[i] = prefix[i];
        used[static_cast<std::size_t>(prefix[i])] = 1;
    }

    auto visit = [&]() {
        assignSpareInto(ws, lanes, ws.stageToGpu, stage_demand,
                        capacity, config.spareSafety, stage_desire);
        double coverage = coverageOf(ws, capacity);
        ++best.evaluated;
        // Drain times and adjacency penalties only subtract from the
        // score, so coverage * 1e6 bounds it from above: a candidate
        // whose bound cannot strictly beat the chunk's best is
        // rejected before any stripe plan is built (ties keep the
        // earlier candidate either way).
        if (best.have && coverage * 1e6 <= best.score)
            return;
        Evaluation ev = finishEval(topo, lanes, ws, ws.stageToGpu,
                                   capacity, coverage);
        double score = scoreOf(ev, config);
        if (!best.have || score > best.score) {
            best.have = true;
            best.score = score;
            best.stageToGpu = ws.stageToGpu;
        }
    };

    // Lexicographic enumeration of the unused GPUs over the tail
    // positions.  Stages beyond num_stages do not exist: placements
    // are k-permutations, so each distinct mapping is evaluated
    // exactly once (the old full-n! scan evaluated duplicate prefixes
    // (n-k)! times and kept the first — same winner, more work).
    auto walk = [&](auto &&self, int depth) -> void {
        if (depth == k) {
            visit();
            return;
        }
        for (int g = 0; g < n; ++g) {
            if (used[static_cast<std::size_t>(g)])
                continue;
            used[static_cast<std::size_t>(g)] = 1;
            ws.stageToGpu[static_cast<std::size_t>(depth)] = g;
            self(self, depth + 1);
            used[static_cast<std::size_t>(g)] = 0;
        }
    };
    walk(walk, static_cast<int>(prefix.size()));
    return best;
}

} // namespace

MappingResult
searchDeviceMapping(const hw::Topology &topo,
                    const std::vector<Bytes> &stage_demand,
                    Bytes capacity, MapperConfig config,
                    const std::vector<Bytes> &stage_desire,
                    util::ThreadPool *pool)
{
    const int num_stages = static_cast<int>(stage_demand.size());
    if (num_stages > topo.numGpus())
        util::fatal("more stages (%d) than GPUs (%d)", num_stages,
                    topo.numGpus());

    MappingResult best;
    const int n = topo.numGpus();
    LaneMatrix lanes(topo);

    auto finalize = [&](const std::vector<int> &stage_to_gpu,
                        long evaluated) {
        Scratch ws(n);
        assignSpareInto(ws, lanes, stage_to_gpu, stage_demand,
                        capacity, config.spareSafety, stage_desire);
        Evaluation ev =
            finishEval(topo, lanes, ws, stage_to_gpu, capacity,
                       coverageOf(ws, capacity));
        best.stageToGpu = stage_to_gpu;
        best.grants.clear();
        for (int exp = 0; exp < n; ++exp) {
            auto &list = ws.grantList[static_cast<std::size_t>(exp)];
            if (!list.empty())
                best.grants.emplace(exp, std::move(list));
        }
        best.coverage = ev.coverage;
        best.score = scoreOf(ev, config);
        best.evaluated = evaluated;
    };

    // Hierarchical cluster placement: an asymmetric multi-node fabric
    // would otherwise fall into the identity short-circuit below (the
    // factorial over 16+ GPUs is hopeless).  Stages are dealt out as
    // contiguous blocks, one block per node — pipeline order follows
    // the node chain so only one boundary per node pair crosses a NIC
    // — and each block is placed by an independent intra-node scan on
    // the extracted node view.  Grants are finalized globally on the
    // full topology, so cross-node donors remain available to stages
    // whose own node has no spare left.  Node scans run serially in
    // node order (each may use the pool internally), keeping the
    // result byte-identical across thread counts.
    if (topo.multiNodeFabric() && !topo.symmetric() &&
        config.searchPlacement && topo.gpusPerNode() <= 8 &&
        num_stages % topo.numNodes() == 0) {
        const int nodes = topo.numNodes();
        const int per = num_stages / nodes;
        const int gpn = topo.gpusPerNode();
        std::vector<int> assembled(
            static_cast<std::size_t>(num_stages));
        long evaluated = 0;
        for (int node = 0; node < nodes; ++node) {
            hw::Topology sub = topo.extractNode(node);
            auto base = static_cast<std::size_t>(node) *
                        static_cast<std::size_t>(per);
            std::vector<Bytes> demand(
                stage_demand.begin() + static_cast<long>(base),
                stage_demand.begin() + static_cast<long>(base) + per);
            std::vector<Bytes> desire;
            if (!stage_desire.empty())
                desire.assign(
                    stage_desire.begin() + static_cast<long>(base),
                    stage_desire.begin() + static_cast<long>(base) +
                        per);
            MappingResult r = searchDeviceMapping(
                sub, demand, capacity, config, desire, pool);
            for (int s = 0; s < per; ++s)
                assembled[base + static_cast<std::size_t>(s)] =
                    node * gpn +
                    r.stageToGpu[static_cast<std::size_t>(s)];
            evaluated += r.evaluated;
        }
        finalize(assembled, evaluated);
        return best;
    }

    // 8! placements are cheap; beyond 8 GPUs the factorial explodes,
    // so symmetric clusters keep the identity placement (stages
    // already follow the node chain; every intra-node slot is
    // equivalent).
    if (topo.symmetric() || !config.searchPlacement ||
        topo.numGpus() > 8) {
        // Switch fabrics make every placement equivalent; with the
        // search disabled we likewise keep the identity mapping.
        // Either way all spare memory is granted (Sec. III-C).
        std::vector<int> identity(
            static_cast<std::size_t>(num_stages));
        std::iota(identity.begin(), identity.end(), 0);
        finalize(identity, 1);
        return best;
    }

    // Chunked scan: fix the first min(2, k) stage positions per chunk
    // (56 chunks on an 8-GPU server) and enumerate the tails
    // independently.  Chunk boundaries are a property of the problem,
    // not of the thread count, so the reduction below — first chunk
    // in lexicographic order wins score ties — selects the same
    // placement whether the chunks run serially or on the pool.
    std::vector<std::vector<int>> prefixes;
    if (num_stages >= 2) {
        for (int a = 0; a < n; ++a) {
            for (int b = 0; b < n; ++b) {
                if (b != a)
                    prefixes.push_back({a, b});
            }
        }
    } else {
        for (int a = 0; a < n; ++a)
            prefixes.push_back({a});
    }

    std::vector<ChunkBest> results(prefixes.size());
    auto scan_one = [&](std::size_t c) {
        results[c] = scanChunk(topo, lanes, prefixes[c], stage_demand,
                               capacity, config, stage_desire);
    };
    if (pool != nullptr && pool->threads() > 1)
        pool->parallelFor(prefixes.size(), scan_one);
    else {
        for (std::size_t c = 0; c < prefixes.size(); ++c)
            scan_one(c);
    }

    long evaluated = 0;
    const ChunkBest *winner = nullptr;
    for (const auto &r : results) {
        evaluated += r.evaluated;
        if (r.have && (winner == nullptr || r.score > winner->score))
            winner = &r;
    }
    if (winner == nullptr)
        util::fatal("placement scan found no candidate");
    finalize(winner->stageToGpu, evaluated);
    return best;
}

} // namespace planner
} // namespace mpress
