/**
 * @file
 * Per-tensor cost model for the three memory-compaction techniques
 * (the machinery behind the paper's Table III).
 *
 * For a tensor of a given size the model answers: how long would
 * recomputation, GPU-CPU swap, or D2D swap take, and — given the
 * tensor's observed live interval — how much of that cost lands on
 * the training critical path.  The planner ranks techniques by this
 * "extra overhead" exactly as Sec. III-D describes.
 */

#ifndef MPRESS_PLANNER_COSTMODEL_HH
#define MPRESS_PLANNER_COSTMODEL_HH

#include "compaction/striping.hh"
#include "hw/topology.hh"
#include "model/model.hh"

namespace mpress {
namespace planner {

using util::Bytes;
using util::Tick;

/** Raw per-technique time costs for one tensor instance. */
struct TechniqueCosts
{
    Tick recompute = 0;   ///< forward re-execution time
    Tick gpuCpuSwap = 0;  ///< one-way PCIe transfer time
    Tick d2dSwap = 0;     ///< striped NVLink transfer time
};

/**
 * Cost model bound to a topology and training precision.
 */
class CostModel
{
  public:
    CostModel(const hw::Topology &topo, hw::Precision precision)
        : _topo(topo), _precision(precision)
    {}

    /** Recomputation time of @p layer (its forward pass). */
    Tick
    recomputeTime(const model::Layer &layer) const
    {
        return _topo.gpu().computeTime(layer.fwdFlops, _precision);
    }

    /** One-way GPU-CPU swap time for @p bytes. */
    Tick
    gpuCpuSwapTime(Bytes bytes) const
    {
        return _topo.pcieSpec().transferTime(bytes);
    }

    /** One-way D2D swap time for @p bytes striped over @p lanes. */
    Tick
    d2dSwapTime(Bytes bytes, int lanes) const
    {
        if (lanes <= 0)
            lanes = 1;
        Bytes per_lane = (bytes + lanes - 1) / lanes;
        return _topo.nvlinkSpec().transferTime(per_lane);
    }

    /** One-way D2D swap time for @p bytes under concrete grants from
     *  @p src (the striping the runtime would actually execute);
     *  returns -1 when the grants cannot absorb the tensor. */
    Tick
    d2dSwapTime(int src, const std::vector<compaction::SpareGrant>
                              &grants,
                Bytes bytes) const
    {
        auto plan = compaction::makeStripePlan(_topo, src, grants,
                                               bytes);
        if (plan.empty())
            return -1;
        return compaction::stripePlanTime(_topo, src, plan);
    }

    /** All three raw costs for a @p bytes tensor of @p layer, with
     *  D2D striped over @p lanes (Table III rows). */
    TechniqueCosts
    costsFor(const model::Layer &layer, int d2d_lanes) const
    {
        TechniqueCosts c;
        c.recompute = recomputeTime(layer);
        c.gpuCpuSwap = gpuCpuSwapTime(layer.activationStash);
        c.d2dSwap = d2dSwapTime(layer.activationStash, d2d_lanes);
        return c;
    }

    /**
     * Critical-path overhead of GPU-CPU swapping a tensor whose live
     * interval is @p interval: the swap-out and the later swap-in
     * never overlap each other (the tensor must fully leave before it
     * can return), so the round trip costs two one-way transfers, and
     * only the part not covered by the interval is paid (footnote 2
     * of the paper).
     */
    Tick
    gpuCpuSwapExtra(Bytes bytes, Tick interval) const
    {
        Tick round_trip = 2 * gpuCpuSwapTime(bytes);
        return round_trip > interval ? round_trip - interval : 0;
    }

    /** Critical-path overhead of D2D swap under @p grants. */
    Tick
    d2dSwapExtra(int src,
                 const std::vector<compaction::SpareGrant> &grants,
                 Bytes bytes, Tick interval) const
    {
        Tick one_way = d2dSwapTime(src, grants, bytes);
        if (one_way < 0)
            return -1;
        Tick round_trip = 2 * one_way;
        return round_trip > interval ? round_trip - interval : 0;
    }

    /** Critical-path overhead of recomputation: the re-executed
     *  forward always occupies the compute queue. */
    Tick
    recomputeExtra(const model::Layer &layer) const
    {
        return recomputeTime(layer);
    }

    const hw::Topology &topology() const { return _topo; }

  private:
    const hw::Topology &_topo;
    hw::Precision _precision;
};

} // namespace planner
} // namespace mpress

#endif // MPRESS_PLANNER_COSTMODEL_HH
