# Empty compiler generated dependencies file for mpress_hw.
# This may be replaced when dependencies are built.
