file(REMOVE_RECURSE
  "libmpress_hw.a"
)
