file(REMOVE_RECURSE
  "CMakeFiles/mpress_hw.dir/fabric.cc.o"
  "CMakeFiles/mpress_hw.dir/fabric.cc.o.d"
  "CMakeFiles/mpress_hw.dir/gpu.cc.o"
  "CMakeFiles/mpress_hw.dir/gpu.cc.o.d"
  "CMakeFiles/mpress_hw.dir/link.cc.o"
  "CMakeFiles/mpress_hw.dir/link.cc.o.d"
  "CMakeFiles/mpress_hw.dir/topology.cc.o"
  "CMakeFiles/mpress_hw.dir/topology.cc.o.d"
  "libmpress_hw.a"
  "libmpress_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpress_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
