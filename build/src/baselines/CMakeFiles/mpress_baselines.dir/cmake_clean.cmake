file(REMOVE_RECURSE
  "CMakeFiles/mpress_baselines.dir/tensor_parallel.cc.o"
  "CMakeFiles/mpress_baselines.dir/tensor_parallel.cc.o.d"
  "CMakeFiles/mpress_baselines.dir/zero.cc.o"
  "CMakeFiles/mpress_baselines.dir/zero.cc.o.d"
  "libmpress_baselines.a"
  "libmpress_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpress_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
