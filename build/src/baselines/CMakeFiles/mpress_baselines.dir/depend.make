# Empty dependencies file for mpress_baselines.
# This may be replaced when dependencies are built.
