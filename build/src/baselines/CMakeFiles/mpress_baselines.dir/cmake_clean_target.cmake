file(REMOVE_RECURSE
  "libmpress_baselines.a"
)
