file(REMOVE_RECURSE
  "libmpress_compaction.a"
)
