# Empty dependencies file for mpress_compaction.
# This may be replaced when dependencies are built.
