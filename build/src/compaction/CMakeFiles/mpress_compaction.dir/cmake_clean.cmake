file(REMOVE_RECURSE
  "CMakeFiles/mpress_compaction.dir/metadata.cc.o"
  "CMakeFiles/mpress_compaction.dir/metadata.cc.o.d"
  "CMakeFiles/mpress_compaction.dir/serialize.cc.o"
  "CMakeFiles/mpress_compaction.dir/serialize.cc.o.d"
  "CMakeFiles/mpress_compaction.dir/striping.cc.o"
  "CMakeFiles/mpress_compaction.dir/striping.cc.o.d"
  "libmpress_compaction.a"
  "libmpress_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpress_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
