file(REMOVE_RECURSE
  "CMakeFiles/mpress_util.dir/logging.cc.o"
  "CMakeFiles/mpress_util.dir/logging.cc.o.d"
  "CMakeFiles/mpress_util.dir/strings.cc.o"
  "CMakeFiles/mpress_util.dir/strings.cc.o.d"
  "CMakeFiles/mpress_util.dir/table.cc.o"
  "CMakeFiles/mpress_util.dir/table.cc.o.d"
  "CMakeFiles/mpress_util.dir/units.cc.o"
  "CMakeFiles/mpress_util.dir/units.cc.o.d"
  "libmpress_util.a"
  "libmpress_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpress_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
