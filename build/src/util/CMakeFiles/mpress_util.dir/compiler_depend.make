# Empty compiler generated dependencies file for mpress_util.
# This may be replaced when dependencies are built.
