file(REMOVE_RECURSE
  "libmpress_util.a"
)
