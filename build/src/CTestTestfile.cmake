# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("sim")
subdirs("hw")
subdirs("model")
subdirs("partition")
subdirs("pipeline")
subdirs("memory")
subdirs("compaction")
subdirs("runtime")
subdirs("planner")
subdirs("baselines")
subdirs("api")
