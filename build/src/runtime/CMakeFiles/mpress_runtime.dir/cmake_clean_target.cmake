file(REMOVE_RECURSE
  "libmpress_runtime.a"
)
