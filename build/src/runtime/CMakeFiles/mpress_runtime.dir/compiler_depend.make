# Empty compiler generated dependencies file for mpress_runtime.
# This may be replaced when dependencies are built.
