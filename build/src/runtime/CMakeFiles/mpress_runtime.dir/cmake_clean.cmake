file(REMOVE_RECURSE
  "CMakeFiles/mpress_runtime.dir/executor.cc.o"
  "CMakeFiles/mpress_runtime.dir/executor.cc.o.d"
  "libmpress_runtime.a"
  "libmpress_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpress_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
