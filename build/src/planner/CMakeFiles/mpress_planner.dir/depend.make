# Empty dependencies file for mpress_planner.
# This may be replaced when dependencies are built.
