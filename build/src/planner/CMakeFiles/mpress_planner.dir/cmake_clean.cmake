file(REMOVE_RECURSE
  "CMakeFiles/mpress_planner.dir/mapper.cc.o"
  "CMakeFiles/mpress_planner.dir/mapper.cc.o.d"
  "CMakeFiles/mpress_planner.dir/planner.cc.o"
  "CMakeFiles/mpress_planner.dir/planner.cc.o.d"
  "libmpress_planner.a"
  "libmpress_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpress_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
