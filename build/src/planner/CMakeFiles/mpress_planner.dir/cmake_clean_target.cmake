file(REMOVE_RECURSE
  "libmpress_planner.a"
)
