# Empty dependencies file for mpress_partition.
# This may be replaced when dependencies are built.
