
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/partition.cc" "src/partition/CMakeFiles/mpress_partition.dir/partition.cc.o" "gcc" "src/partition/CMakeFiles/mpress_partition.dir/partition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/mpress_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mpress_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpress_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mpress_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
