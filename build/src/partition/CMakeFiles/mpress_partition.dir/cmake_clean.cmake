file(REMOVE_RECURSE
  "CMakeFiles/mpress_partition.dir/partition.cc.o"
  "CMakeFiles/mpress_partition.dir/partition.cc.o.d"
  "libmpress_partition.a"
  "libmpress_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpress_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
