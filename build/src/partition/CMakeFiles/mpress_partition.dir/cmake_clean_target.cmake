file(REMOVE_RECURSE
  "libmpress_partition.a"
)
