file(REMOVE_RECURSE
  "libmpress_api.a"
)
