# Empty compiler generated dependencies file for mpress_api.
# This may be replaced when dependencies are built.
