file(REMOVE_RECURSE
  "CMakeFiles/mpress_api.dir/session.cc.o"
  "CMakeFiles/mpress_api.dir/session.cc.o.d"
  "libmpress_api.a"
  "libmpress_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpress_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
