file(REMOVE_RECURSE
  "CMakeFiles/mpress_sim.dir/engine.cc.o"
  "CMakeFiles/mpress_sim.dir/engine.cc.o.d"
  "CMakeFiles/mpress_sim.dir/trace.cc.o"
  "CMakeFiles/mpress_sim.dir/trace.cc.o.d"
  "libmpress_sim.a"
  "libmpress_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpress_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
