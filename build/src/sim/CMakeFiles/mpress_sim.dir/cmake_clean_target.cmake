file(REMOVE_RECURSE
  "libmpress_sim.a"
)
