# Empty compiler generated dependencies file for mpress_sim.
# This may be replaced when dependencies are built.
