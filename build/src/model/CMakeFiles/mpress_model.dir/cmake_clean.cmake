file(REMOVE_RECURSE
  "CMakeFiles/mpress_model.dir/model.cc.o"
  "CMakeFiles/mpress_model.dir/model.cc.o.d"
  "libmpress_model.a"
  "libmpress_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpress_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
