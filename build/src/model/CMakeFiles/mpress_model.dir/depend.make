# Empty dependencies file for mpress_model.
# This may be replaced when dependencies are built.
