file(REMOVE_RECURSE
  "libmpress_model.a"
)
