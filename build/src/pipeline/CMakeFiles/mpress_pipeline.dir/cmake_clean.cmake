file(REMOVE_RECURSE
  "CMakeFiles/mpress_pipeline.dir/schedule.cc.o"
  "CMakeFiles/mpress_pipeline.dir/schedule.cc.o.d"
  "libmpress_pipeline.a"
  "libmpress_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpress_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
