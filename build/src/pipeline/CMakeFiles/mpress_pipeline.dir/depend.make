# Empty dependencies file for mpress_pipeline.
# This may be replaced when dependencies are built.
