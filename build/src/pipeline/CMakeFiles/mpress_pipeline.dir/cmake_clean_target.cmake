file(REMOVE_RECURSE
  "libmpress_pipeline.a"
)
