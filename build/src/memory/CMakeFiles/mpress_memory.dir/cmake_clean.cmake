file(REMOVE_RECURSE
  "CMakeFiles/mpress_memory.dir/liveness.cc.o"
  "CMakeFiles/mpress_memory.dir/liveness.cc.o.d"
  "CMakeFiles/mpress_memory.dir/tracker.cc.o"
  "CMakeFiles/mpress_memory.dir/tracker.cc.o.d"
  "libmpress_memory.a"
  "libmpress_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpress_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
