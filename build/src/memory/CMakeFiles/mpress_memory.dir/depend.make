# Empty dependencies file for mpress_memory.
# This may be replaced when dependencies are built.
