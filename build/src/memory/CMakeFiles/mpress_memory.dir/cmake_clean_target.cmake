file(REMOVE_RECURSE
  "libmpress_memory.a"
)
