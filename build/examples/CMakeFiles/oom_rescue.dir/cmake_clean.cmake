file(REMOVE_RECURSE
  "CMakeFiles/oom_rescue.dir/oom_rescue.cc.o"
  "CMakeFiles/oom_rescue.dir/oom_rescue.cc.o.d"
  "oom_rescue"
  "oom_rescue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oom_rescue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
