# Empty dependencies file for oom_rescue.
# This may be replaced when dependencies are built.
