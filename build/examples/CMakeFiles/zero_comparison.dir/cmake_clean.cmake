file(REMOVE_RECURSE
  "CMakeFiles/zero_comparison.dir/zero_comparison.cc.o"
  "CMakeFiles/zero_comparison.dir/zero_comparison.cc.o.d"
  "zero_comparison"
  "zero_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
