# Empty dependencies file for zero_comparison.
# This may be replaced when dependencies are built.
