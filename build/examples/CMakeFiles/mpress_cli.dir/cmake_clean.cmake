file(REMOVE_RECURSE
  "CMakeFiles/mpress_cli.dir/mpress_cli.cc.o"
  "CMakeFiles/mpress_cli.dir/mpress_cli.cc.o.d"
  "mpress_cli"
  "mpress_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpress_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
