# Empty compiler generated dependencies file for mpress_cli.
# This may be replaced when dependencies are built.
