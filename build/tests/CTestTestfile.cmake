# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/partition_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/compaction_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/reproduction_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
