file(REMOVE_RECURSE
  "../bench/bench_generations"
  "../bench/bench_generations.pdb"
  "CMakeFiles/bench_generations.dir/bench_generations.cc.o"
  "CMakeFiles/bench_generations.dir/bench_generations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
