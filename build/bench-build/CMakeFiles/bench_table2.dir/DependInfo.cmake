
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2.cc" "bench-build/CMakeFiles/bench_table2.dir/bench_table2.cc.o" "gcc" "bench-build/CMakeFiles/bench_table2.dir/bench_table2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/mpress_api.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mpress_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/mpress_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mpress_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/compaction/CMakeFiles/mpress_compaction.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/mpress_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/partition/CMakeFiles/mpress_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mpress_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mpress_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpress_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/mpress_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mpress_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
