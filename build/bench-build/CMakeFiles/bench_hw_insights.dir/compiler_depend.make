# Empty compiler generated dependencies file for bench_hw_insights.
# This may be replaced when dependencies are built.
