file(REMOVE_RECURSE
  "../bench/bench_hw_insights"
  "../bench/bench_hw_insights.pdb"
  "CMakeFiles/bench_hw_insights.dir/bench_hw_insights.cc.o"
  "CMakeFiles/bench_hw_insights.dir/bench_hw_insights.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hw_insights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
