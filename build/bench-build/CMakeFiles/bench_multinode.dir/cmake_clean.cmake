file(REMOVE_RECURSE
  "../bench/bench_multinode"
  "../bench/bench_multinode.pdb"
  "CMakeFiles/bench_multinode.dir/bench_multinode.cc.o"
  "CMakeFiles/bench_multinode.dir/bench_multinode.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multinode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
