file(REMOVE_RECURSE
  "../bench/bench_schedule_ablation"
  "../bench/bench_schedule_ablation.pdb"
  "CMakeFiles/bench_schedule_ablation.dir/bench_schedule_ablation.cc.o"
  "CMakeFiles/bench_schedule_ablation.dir/bench_schedule_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schedule_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
