file(REMOVE_RECURSE
  "../bench/bench_planner_ablation"
  "../bench/bench_planner_ablation.pdb"
  "CMakeFiles/bench_planner_ablation.dir/bench_planner_ablation.cc.o"
  "CMakeFiles/bench_planner_ablation.dir/bench_planner_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_planner_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
