# Empty dependencies file for bench_parallelism_comparison.
# This may be replaced when dependencies are built.
