file(REMOVE_RECURSE
  "../bench/bench_parallelism_comparison"
  "../bench/bench_parallelism_comparison.pdb"
  "CMakeFiles/bench_parallelism_comparison.dir/bench_parallelism_comparison.cc.o"
  "CMakeFiles/bench_parallelism_comparison.dir/bench_parallelism_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallelism_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
