# Empty dependencies file for bench_mapper_micro.
# This may be replaced when dependencies are built.
