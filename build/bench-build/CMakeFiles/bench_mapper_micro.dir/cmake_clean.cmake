file(REMOVE_RECURSE
  "../bench/bench_mapper_micro"
  "../bench/bench_mapper_micro.pdb"
  "CMakeFiles/bench_mapper_micro.dir/bench_mapper_micro.cc.o"
  "CMakeFiles/bench_mapper_micro.dir/bench_mapper_micro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mapper_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
