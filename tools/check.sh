#!/usr/bin/env bash
# Full local gate: plain build + tests, sanitizer builds + tests
# (ASan+UBSan, then TSan over the concurrency-relevant suites), and
# (when a clang-tidy binary exists) lint over the source tree.
#
# Usage: tools/check.sh [--no-tidy] [--no-asan] [--no-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."

run_tidy=1
run_asan=1
run_tsan=1
for arg in "$@"; do
    case "$arg" in
    --no-tidy) run_tidy=0 ;;
    --no-asan) run_asan=0 ;;
    --no-tsan) run_tsan=0 ;;
    *)
        echo "usage: tools/check.sh [--no-tidy] [--no-asan]" \
             "[--no-tsan]" >&2
        exit 1
        ;;
    esac
done

jobs=$(nproc 2>/dev/null || echo 2)

smoke=""
sweep=""
trap 'rm -rf "$smoke" "$sweep"' EXIT

echo "== plain build =="
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [ "$run_asan" = 1 ]; then
    echo "== sanitizer build (ASan + UBSan) =="
    cmake -B build-asan -S . -DMPRESS_SANITIZE=ON >/dev/null
    cmake --build build-asan -j "$jobs"
    ctest --test-dir build-asan --output-on-failure -j "$jobs"

    echo "== trace/metrics export smoke =="
    smoke=$(mktemp -d)
    ./build-asan/examples/mpress_cli \
        --timeline "$smoke/trace.json" \
        --metrics "$smoke/metrics.json" >/dev/null
    python3 - "$smoke" <<'EOF'
import json, sys
d = sys.argv[1]
trace = json.load(open(d + "/trace.json"))
events = trace["traceEvents"]
assert any(e.get("ph") == "C" for e in events), "no counter events"
assert any(e.get("ph") == "X" for e in events), "no span events"
metrics = json.load(open(d + "/metrics.json"))
assert metrics["memory"], "no memory timelines"
assert metrics["utilization"], "no utilization channels"
print("trace: %d events; metrics: %d GPUs, %d channels"
      % (len(events), len(metrics["memory"]),
         len(metrics["utilization"])))
EOF
fi

if [ "$run_tsan" = 1 ]; then
    echo "== sanitizer build (TSan) =="
    # The race-relevant surface: the thread pool, the planner's
    # parallel trial search, the executor it drives concurrently and
    # the determinism suite that exercises threads=1 vs threads=4.
    cmake -B build-tsan -S . -DMPRESS_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$jobs"
    ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
        -R 'ThreadPool|SearchDriver|BudgetGate|BudgetLedger|Determinism|Planner|Runtime'

    echo "== sweep smoke (TSan) =="
    sweep=$(mktemp -d)
    cat >"$sweep/spec.json" <<'EOF'
{ "scenarios": [
  {"model": "bert-0.64b", "strategy": "recompute", "minibatches": 2},
  {"model": "bert-0.64b", "strategy": "gpu-cpu-swap", "minibatches": 2},
  {"model": "bert-1.67b", "strategy": "mpress", "minibatches": 2}
] }
EOF
    ./build-tsan/examples/mpress_cli --sweep "$sweep/spec.json" \
        --threads 4 --sweep-csv "$sweep/rows.csv" \
        >"$sweep/rows.json"
    python3 - "$sweep" <<'EOF'
import json, sys
d = sys.argv[1]
rows = json.load(open(d + "/rows.json"))["rows"]
assert len(rows) == 3, rows
csv = open(d + "/rows.csv").read().splitlines()
assert len(csv) == 4, csv
# Rows keep spec order regardless of worker completion order.
assert [r["model"] for r in rows] == \
    ["bert-0.64b", "bert-0.64b", "bert-1.67b"]
print("sweep: %d scenarios ok" % len(rows))
EOF
fi

if [ "$run_tidy" = 1 ]; then
    if command -v clang-tidy >/dev/null 2>&1; then
        echo "== clang-tidy =="
        git ls-files 'src/*.cc' 'examples/*.cc' |
            xargs -P "$jobs" -n 1 clang-tidy -p build --quiet
    else
        echo "== clang-tidy not installed; skipping lint =="
    fi
fi

echo "== all checks passed =="
