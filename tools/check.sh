#!/usr/bin/env bash
# Full local gate: plain build + tests, sanitizer builds + tests
# (ASan+UBSan, then TSan over the concurrency-relevant suites), and
# (when a clang-tidy binary exists) lint over the source tree.
#
# Usage: tools/check.sh [--no-tidy] [--no-asan] [--no-tsan] [--no-perf]
set -euo pipefail

cd "$(dirname "$0")/.."

run_tidy=1
run_asan=1
run_tsan=1
run_perf=1
for arg in "$@"; do
    case "$arg" in
    --no-tidy) run_tidy=0 ;;
    --no-asan) run_asan=0 ;;
    --no-tsan) run_tsan=0 ;;
    --no-perf) run_perf=0 ;;
    *)
        echo "usage: tools/check.sh [--no-tidy] [--no-asan]" \
             "[--no-tsan] [--no-perf]" >&2
        exit 1
        ;;
    esac
done

jobs=$(nproc 2>/dev/null || echo 2)

smoke=""
sweep=""
fault=""
perf=""
trap 'rm -rf "$smoke" "$sweep" "$fault" "$perf"' EXIT

echo "== hot-path lint =="
tools/lint_hotpath.sh

echo "== plain build =="
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [ "$run_asan" = 1 ]; then
    echo "== sanitizer build (ASan + UBSan) =="
    cmake -B build-asan -S . -DMPRESS_SANITIZE=ON >/dev/null
    cmake --build build-asan -j "$jobs"
    ctest --test-dir build-asan --output-on-failure -j "$jobs"

    echo "== trace/metrics export smoke =="
    smoke=$(mktemp -d)
    ./build-asan/examples/mpress_cli \
        --timeline "$smoke/trace.json" \
        --metrics "$smoke/metrics.json" >/dev/null
    python3 - "$smoke" <<'EOF'
import json, sys
d = sys.argv[1]
trace = json.load(open(d + "/trace.json"))
events = trace["traceEvents"]
assert any(e.get("ph") == "C" for e in events), "no counter events"
assert any(e.get("ph") == "X" for e in events), "no span events"
metrics = json.load(open(d + "/metrics.json"))
assert metrics["memory"], "no memory timelines"
assert metrics["utilization"], "no utilization channels"
print("trace: %d events; metrics: %d GPUs, %d channels"
      % (len(events), len(metrics["memory"]),
         len(metrics["utilization"])))
EOF

    echo "== fault-scenario smoke (ASan) =="
    fault=$(mktemp -d)
    cat >"$fault/faults.json" <<'EOF'
{ "name": "dead-d2d", "seed": 7, "events": [
  {"type": "transfer-fail", "start_ms": 0, "end_ms": 1000000,
   "src": 0, "probability": 1.0},
  {"type": "gpu-straggle", "start_ms": 0, "end_ms": 500,
   "gpu": 1, "factor": 0.8}
] }
EOF
    # The ladder completes a run whose D2D path is killed outright;
    # the same run without the ladder must OOM (exit 2).
    ./build-asan/examples/mpress_cli --model bert-1.67b \
        --strategy d2d-only --microbatch 6 \
        --faults "$fault/faults.json" \
        --metrics "$fault/run1.json" >/dev/null
    ./build-asan/examples/mpress_cli --model bert-1.67b \
        --strategy d2d-only --microbatch 6 \
        --faults "$fault/faults.json" \
        --metrics "$fault/run2.json" >/dev/null
    cmp "$fault/run1.json" "$fault/run2.json"
    if ./build-asan/examples/mpress_cli --model bert-1.67b \
        --strategy d2d-only --microbatch 6 --no-fault-ladder \
        --faults "$fault/faults.json" >/dev/null; then
        echo "expected OOM with the ladder disabled" >&2
        exit 1
    fi
    python3 - "$fault" <<'EOF'
import json, sys
d = sys.argv[1]
series = json.load(open(d + "/run1.json"))["metrics"]
names = {s["name"] for s in series}
assert "fault.transfer.failures" in names, names
assert "fault.fallback.swap" in names, names
print("fault smoke: deterministic metrics, ladder rescued the run")
EOF

    echo "== static analysis smoke (ASan) =="
    # A plan the planner accepts for bert-1.67b must analyze and
    # verify clean (exit 0); judging the same plan against a model
    # it provably cannot hold must be rejected (exit 3) with the
    # cap-proved-overflow rule in the diagnostics.
    ./build-asan/examples/mpress_cli --model bert-1.67b \
        --strategy mpress --minibatches 2 \
        --save-plan "$smoke/fit.plan" >/dev/null
    ./build-asan/examples/mpress-verify --plan "$smoke/fit.plan" \
        --model bert-1.67b --analyze >"$smoke/fit.out"
    grep -q 'analysis:' "$smoke/fit.out"
    if ./build-asan/examples/mpress-verify --plan "$smoke/fit.plan" \
        --model gpt-25.5b --analyze >"$smoke/oom.out"; then
        echo "expected the gpt-25.5b judgment to be rejected" >&2
        exit 1
    fi
    grep -q 'cap-proved-overflow' "$smoke/oom.out"
    echo "analysis smoke: certificate printed, provable overflow" \
         "rejected"

    echo "== cluster smoke (ASan) =="
    # A 2-node DGX-2 cluster must plan a model that OOMs on one node,
    # and a spec that fails verifyClusterSpec must be rejected with
    # the diagnostic exit code (3), not a crash.
    ./build-asan/examples/mpress_cli --cluster 2x-dgx2 \
        --model bert-1.67b --minibatches 2 \
        --strategy mpress >"$smoke/cluster.out"
    grep -q 'samples/s' "$smoke/cluster.out"
    cat >"$smoke/bad-cluster.json" <<'EOF'
{"name":"bad","nodes":65,"node":"dgx2","nicsPerNode":1}
EOF
    if ./build-asan/examples/mpress_cli \
        --cluster "$smoke/bad-cluster.json" >/dev/null 2>&1; then
        echo "expected the 65-node spec to be rejected" >&2
        exit 1
    fi
    rc=0
    ./build-asan/examples/mpress_cli \
        --cluster "$smoke/bad-cluster.json" >/dev/null 2>&1 || rc=$?
    [ "$rc" = 3 ] || {
        echo "bad cluster spec exited $rc, want 3" >&2
        exit 1
    }
    echo "cluster smoke: 2-node plan trained, bad spec rejected"

    echo "== serve smoke (ASan) =="
    # The daemon under ASan: serve a real plan, then feed it hostile
    # input (syntax garbage, a nesting bomb, an unknown op) — every
    # one must come back as a typed error on a surviving connection —
    # then saturate both workers (test-only stall op, zero queue) so
    # an over-capacity request gets the typed overloaded error, and
    # finally the shutdown op must stop the process with exit 0.
    ./build-asan/examples/mpress-serve --port 0 \
        --workers 2 --max-queue 0 --allow-stall \
        >"$smoke/serve.out" &
    serve_pid=$!
    for _ in $(seq 1 50); do
        grep -q 'listening on' "$smoke/serve.out" 2>/dev/null && break
        sleep 0.1
    done
    serve_port=$(sed -n \
        's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
        "$smoke/serve.out")
    python3 - "$serve_port" <<'EOF'
import json, socket, sys
port = int(sys.argv[1])
s = socket.create_connection(("127.0.0.1", port), timeout=60)
f = s.makefile("r")

def call(line):
    s.sendall(line.encode() + b"\n")
    return json.loads(f.readline())

assert call('{"op":"ping"}')["ok"]
plan = call('{"op":"plan","id":"smoke"}')
assert plan["ok"] and plan["result"]["planText"], plan
again = call('{"op":"plan","id":"smoke2"}')
assert again["result"]["planText"] == plan["result"]["planText"]
bad = call('{nope')
assert not bad["ok"] and bad["error"]["kind"] == "parse-error", bad
bomb = '{"op":"plan","job":' + "[" * 64 + "]" * 64 + "}"
deep = call(bomb)
assert not deep["ok"] and deep["error"]["kind"] == "parse-error", deep
unknown = call('{"op":"warp-drive"}')
assert not unknown["ok"], unknown
assert unknown["error"]["kind"] == "bad-request", unknown
stats = call('{"op":"stats"}')["result"]
assert stats["cacheHits"] > 0, stats  # repeat plan hit the cache

# Over capacity: hold both workers with stalls (queue bound is 0),
# then the next real request must be shed with a typed error.
import time
holders = []
for _ in range(2):
    h = socket.create_connection(("127.0.0.1", port), timeout=60)
    h.sendall(b'{"op":"stall","ms":2000}\n')
    holders.append(h)
for _ in range(100):
    if call('{"op":"stats"}')["result"]["inFlight"] == 2:
        break
    time.sleep(0.05)
else:
    raise AssertionError("stalls never occupied both workers")
shed = call('{"op":"plan","id":"too-many"}')
assert not shed["ok"], shed
assert shed["error"]["kind"] == "overloaded", shed
for h in holders:  # stalls finish normally; connections were fine
    assert json.loads(h.makefile("r").readline())["ok"]
    h.close()

assert call('{"op":"shutdown"}')["ok"]
print("serve smoke: plan served twice (cache hits %d), hostile "
      "input rejected, over-capacity shed, clean shutdown"
      % stats["cacheHits"])
EOF
    wait "$serve_pid"
fi

if [ "$run_tsan" = 1 ]; then
    echo "== sanitizer build (TSan) =="
    # The race-relevant surface: the thread pool, the planner's
    # parallel trial search (including the robustness matrix), the
    # executor it drives concurrently, the fault suites, the
    # determinism suite that exercises threads=1 vs threads=4, and
    # the serve daemon (request workers + readers sharing the
    # resident trial cache and per-connection write locks).
    cmake -B build-tsan -S . -DMPRESS_SANITIZE=thread >/dev/null
    cmake --build build-tsan -j "$jobs"
    ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
        -R 'ThreadPool|SearchDriver|SharedTrialCache|BudgetGate|BudgetLedger|Determinism|Planner|Runtime|Fault|Ladder|Robustness|Injector|Analysis|Serve|Cli|Cluster|WorkerArena'

    echo "== sweep smoke (TSan) =="
    sweep=$(mktemp -d)
    cat >"$sweep/spec.json" <<'EOF'
{ "scenarios": [
  {"model": "bert-0.64b", "strategy": "recompute", "minibatches": 2},
  {"model": "bert-0.64b", "strategy": "gpu-cpu-swap", "minibatches": 2},
  {"model": "bert-1.67b", "strategy": "mpress", "minibatches": 2}
] }
EOF
    ./build-tsan/examples/mpress_cli --sweep "$sweep/spec.json" \
        --threads 4 --sweep-csv "$sweep/rows.csv" \
        >"$sweep/rows.json"
    python3 - "$sweep" <<'EOF'
import json, sys
d = sys.argv[1]
rows = json.load(open(d + "/rows.json"))["rows"]
assert len(rows) == 3, rows
csv = open(d + "/rows.csv").read().splitlines()
assert len(csv) == 4, csv
# Rows keep spec order regardless of worker completion order.
assert [r["model"] for r in rows] == \
    ["bert-0.64b", "bert-0.64b", "bert-1.67b"]
print("sweep: %d scenarios ok" % len(rows))
EOF

    echo "== robustness smoke (TSan) =="
    cat >"$sweep/matrix.json" <<'EOF'
{ "scenarios": [
  {"name": "straggler", "seed": 3, "events": [
    {"type": "gpu-straggle", "start_ms": 0, "end_ms": 1000000,
     "gpu": 0, "factor": 0.5}]},
  {"name": "flaky", "seed": 5, "events": [
    {"type": "transfer-fail", "start_ms": 0, "end_ms": 1000000,
     "src": 0, "probability": 0.5}]}
] }
EOF
    # The matrix fans out on the pool; the profile must be
    # byte-identical at any thread count.
    ./build-tsan/examples/mpress_cli --model bert-1.67b \
        --strategy mpress --minibatches 2 --robustness "$sweep/matrix.json" \
        --threads 1 --robustness-out "$sweep/rb1.json" >/dev/null
    ./build-tsan/examples/mpress_cli --model bert-1.67b \
        --strategy mpress --minibatches 2 --robustness "$sweep/matrix.json" \
        --threads 4 --robustness-out "$sweep/rb4.json" >/dev/null
    cmp "$sweep/rb1.json" "$sweep/rb4.json"
    python3 - "$sweep" <<'EOF'
import json, sys
rb = json.load(open(sys.argv[1] + "/rb1.json"))
assert len(rb["rows"]) == 2, rb
assert rb["worst"] <= rb["p10"] <= rb["p50"], rb
print("robustness: 2 scenarios, worst %.2f <= p10 %.2f <= p50 %.2f"
      % (rb["worst"], rb["p10"], rb["p50"]))
EOF
fi

if [ "$run_perf" = 1 ]; then
    echo "== perf smoke (Release + IPO) =="
    # Event-queue throughput vs the committed baseline.  Wide (30%)
    # tolerance: this catches "someone reintroduced a heap alloc per
    # event", not single-digit regressions, and must not flake on a
    # loaded CI box.  Refresh the baseline with tools/bench_baseline.sh
    # after deliberate engine changes.
    cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_INTERPROCEDURAL_OPTIMIZATION=ON >/dev/null
    cmake --build build-perf -j "$jobs" --target bench_sim_micro
    perf=$(mktemp -d)
    MPRESS_BENCH_DIR="$perf" \
    MPRESS_GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown) \
    MPRESS_BENCH_DATE=$(date -u +%Y-%m-%d) \
        ./build-perf/bench/bench_sim_micro \
        --benchmark_filter='BM_EventQueue|BM_EventChainSteady' \
        --benchmark_min_time=0.5 >/dev/null
    python3 - "$perf/BENCH_sim.json" BENCH_sim.json <<'EOF'
import json, sys
fresh = json.load(open(sys.argv[1]))["benchmarks"]
base = json.load(open(sys.argv[2]))["benchmarks"]
tol = 0.30
failed = False
for name in ("BM_EventQueue/100000", "BM_EventChainSteady/64"):
    want = base[name]["items_per_second"]
    got = fresh[name]["items_per_second"]
    ratio = got / want
    status = "ok" if ratio >= 1.0 - tol else "REGRESSED"
    print("%-28s %8.2fM ev/s vs baseline %8.2fM (%.0f%%) %s"
          % (name, got / 1e6, want / 1e6, 100 * ratio, status))
    failed = failed or ratio < 1.0 - tol
    ape = fresh[name].get("allocs_per_event", 0.0)
    if ape > 0.01:
        print("%-28s allocs/event %.3f > 0.01 FAIL" % (name, ape))
        failed = True
if failed:
    sys.exit("perf smoke failed: event queue slower than baseline "
             "- investigate before updating BENCH_sim.json")
EOF

    echo "== planner search smoke (Release + IPO) =="
    # The planner bench gates its own invariants (byte-identical
    # plans, cache hit rates, prune counters, portfolio anytime
    # contract) via its exit status; on top of that, re-assert the
    # thread-scaling contract here against the fresh JSON so the
    # original regression — adding workers made planning *slower* —
    # can never recommit.  Threads may not help on a small host, but
    # 4 workers must stay within noise of serial.
    cmake --build build-perf -j "$jobs" --target bench_planner_search
    MPRESS_BENCH_DIR="$perf" \
    MPRESS_GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown) \
    MPRESS_BENCH_DATE=$(date -u +%Y-%m-%d) \
        ./build-perf/bench/bench_planner_search >/dev/null
    python3 - "$perf/BENCH_planner.json" <<'EOF'
import json, sys
b = json.load(open(sys.argv[1]))["benchmarks"]
tol = 1.15
t1 = b["plan/threads:1"]["wall_ms"]
t4 = b["plan/threads:4"]["wall_ms"]
print("plan wall: threads=1 %.1f ms, threads=4 %.1f ms (%.2fx)"
      % (t1, t4, t1 / t4))
if t4 > t1 * tol:
    sys.exit("planner smoke failed: planning at 4 threads is slower "
             "than serial beyond %d%% tolerance" % ((tol - 1) * 100))
pruned = b["plan/prune:on"]["pruned"]
print("analytic prune: %d provably-bad trials dropped" % pruned)
if pruned < 1:
    sys.exit("planner smoke failed: analytic prune tier engaged on "
             "zero trials")
EOF

    echo "== cluster scale smoke (Release + IPO) =="
    # The scale bench gates its own invariants (per-row feasibility,
    # byte-identical plans across thread counts, monotone aggregate
    # throughput) via its exit status; on top of that, compare the
    # fresh rows against the committed baseline so a silent
    # cross-node pricing regression cannot recommit.  Wide (30%)
    # tolerance, same rationale as the event-queue gate.
    cmake --build build-perf -j "$jobs" --target bench_cluster_scale
    MPRESS_BENCH_DIR="$perf" \
    MPRESS_GIT_REV=$(git rev-parse --short HEAD 2>/dev/null || echo unknown) \
    MPRESS_BENCH_DATE=$(date -u +%Y-%m-%d) \
        ./build-perf/bench/bench_cluster_scale >/dev/null
    python3 - "$perf/BENCH_cluster.json" BENCH_cluster.json <<'EOF'
import json, sys
fresh = json.load(open(sys.argv[1]))["benchmarks"]
base = json.load(open(sys.argv[2]))["benchmarks"]
tol = 0.30
failed = False
for nodes in (1, 2, 4, 8):
    name = "scale/nodes:%d" % nodes
    if fresh[name]["feasible"] != 1:
        print("%-16s INFEASIBLE" % name)
        failed = True
        continue
    want = base[name]["samples_per_sec"]
    got = fresh[name]["samples_per_sec"]
    ratio = got / want
    status = "ok" if ratio >= 1.0 - tol else "REGRESSED"
    print("%-16s %7.2f samples/s vs baseline %7.2f (%.0f%%) %s"
          % (name, got, want, 100 * ratio, status))
    failed = failed or ratio < 1.0 - tol
if failed:
    sys.exit("cluster smoke failed: scale-out throughput below "
             "baseline - investigate before updating "
             "BENCH_cluster.json")
EOF

    echo "== bench drift (fresh vs committed baselines) =="
    tools/bench_diff.sh "$perf"
fi

if [ "$run_tidy" = 1 ]; then
    if command -v clang-tidy >/dev/null 2>&1; then
        echo "== clang-tidy =="
        git ls-files 'src/*.cc' 'examples/*.cc' |
            xargs -P "$jobs" -n 1 clang-tidy -p build --quiet
    else
        echo "== clang-tidy not installed; skipping lint =="
    fi
fi

echo "== all checks passed =="
