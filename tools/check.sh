#!/usr/bin/env bash
# Full local gate: plain build + tests, sanitizer build + tests, and
# (when a clang-tidy binary exists) lint over the source tree.
#
# Usage: tools/check.sh [--no-tidy] [--no-asan]
set -euo pipefail

cd "$(dirname "$0")/.."

run_tidy=1
run_asan=1
for arg in "$@"; do
    case "$arg" in
    --no-tidy) run_tidy=0 ;;
    --no-asan) run_asan=0 ;;
    *)
        echo "usage: tools/check.sh [--no-tidy] [--no-asan]" >&2
        exit 1
        ;;
    esac
done

jobs=$(nproc 2>/dev/null || echo 2)

echo "== plain build =="
cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"

if [ "$run_asan" = 1 ]; then
    echo "== sanitizer build (ASan + UBSan) =="
    cmake -B build-asan -S . -DMPRESS_SANITIZE=ON >/dev/null
    cmake --build build-asan -j "$jobs"
    ctest --test-dir build-asan --output-on-failure -j "$jobs"

    echo "== trace/metrics export smoke =="
    smoke=$(mktemp -d)
    trap 'rm -rf "$smoke"' EXIT
    ./build-asan/examples/mpress_cli \
        --timeline "$smoke/trace.json" \
        --metrics "$smoke/metrics.json" >/dev/null
    python3 - "$smoke" <<'EOF'
import json, sys
d = sys.argv[1]
trace = json.load(open(d + "/trace.json"))
events = trace["traceEvents"]
assert any(e.get("ph") == "C" for e in events), "no counter events"
assert any(e.get("ph") == "X" for e in events), "no span events"
metrics = json.load(open(d + "/metrics.json"))
assert metrics["memory"], "no memory timelines"
assert metrics["utilization"], "no utilization channels"
print("trace: %d events; metrics: %d GPUs, %d channels"
      % (len(events), len(metrics["memory"]),
         len(metrics["utilization"])))
EOF
fi

if [ "$run_tidy" = 1 ]; then
    if command -v clang-tidy >/dev/null 2>&1; then
        echo "== clang-tidy =="
        git ls-files 'src/*.cc' 'examples/*.cc' |
            xargs -P "$jobs" -n 1 clang-tidy -p build --quiet
    else
        echo "== clang-tidy not installed; skipping lint =="
    fi
fi

echo "== all checks passed =="
