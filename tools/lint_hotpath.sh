#!/usr/bin/env bash
# Simulator hot-path lint: the invariants that keep the event loop
# allocation-free and deterministic (see src/sim/engine.hh).
#
#  1. no std::function in src/sim/ -- event callbacks are
#     util::InlineFunction, which keeps small captures off the heap
#  2. no heap allocation in src/sim/ (new / make_unique / make_shared /
#     malloc) -- deliberate cold-path sites, like slab growth, carry a
#     "lint-hotpath: allow" comment on the offending line
#  3. no wall-clock reads in deterministic modules: simulated time is
#     the only clock src/sim, src/runtime, src/memory, src/fault,
#     src/compaction and src/analysis may observe
#  4. the engine dispatch loops (Engine::run / Engine::runUntil) never
#     allocate or grow containers -- they only pop, invoke and recycle
#
# Exits non-zero on the first violated rule, printing every offending
# line.  Comments are stripped before matching so prose cannot trip the
# token rules.
set -euo pipefail

cd "$(dirname "$0")/.."

fail=0
report() {
    echo "lint-hotpath: $1" >&2
    echo "$2" >&2
    fail=1
}

# Line-wise comment stripping keeps grep -n line numbers honest.
stripped_grep() {
    local pattern=$1 file=$2
    sed 's@//.*@@' "$file" | grep -nE "$pattern" |
        sed "s@^@$file:@" || true
}

# Rule 1: std::function is banned from the simulator core.
hits=""
for f in src/sim/*.hh src/sim/*.cc; do
    hits+=$(stripped_grep 'std::function' "$f")
done
if [ -n "$hits" ]; then
    report "std::function in src/sim/ (use util::InlineFunction)" \
           "$hits"
fi

# Rule 2: heap allocation in src/sim/ needs an explicit annotation.
alloc='\bnew\b|make_unique|make_shared|\bmalloc\(|\bcalloc\('
hits=""
for f in src/sim/*.hh src/sim/*.cc; do
    while IFS= read -r line; do
        [ -z "$line" ] && continue
        n=${line#"$f":}
        n=${n%%:*}
        raw=$(sed -n "${n}p" "$f")
        case "$raw" in
        *"lint-hotpath: allow"*) ;;
        *) hits+="$line"$'\n' ;;
        esac
    done < <(stripped_grep "$alloc" "$f")
done
if [ -n "$hits" ]; then
    report "unannotated heap allocation in src/sim/" "$hits"
fi

# Rule 3: deterministic modules never read the wall clock.
clock='steady_clock|system_clock|high_resolution_clock'
clock+='|gettimeofday|clock_gettime|std::time\b|time\(NULL\)'
clock+='|time\(nullptr\)|<chrono>'
hits=""
for f in src/sim/*.[hc][hc] src/runtime/*.[hc][hc] \
         src/memory/*.[hc][hc] src/fault/*.[hc][hc] \
         src/compaction/*.[hc][hc] src/analysis/*.[hc][hc]; do
    [ -e "$f" ] || continue
    hits+=$(stripped_grep "$clock" "$f")
done
if [ -n "$hits" ]; then
    report "wall-clock read in deterministic code" "$hits"
fi

# Rule 4: the dispatch loops only pop, invoke and recycle.
grow='push_back|emplace_back|\.resize\(|\.reserve\(|\.insert\('
grow+="|$alloc"
body=$(awk '/^Engine::run(Until)?\(/ { inbody = 1 }
            inbody { print }
            /^}/ { inbody = 0 }' src/sim/engine.cc |
       sed 's@//.*@@')
hits=$(grep -nE "$grow" <<<"$body" || true)
if [ -n "$hits" ]; then
    report "allocation or container growth in Engine::run/runUntil" \
           "$hits"
fi

if [ "$fail" = 1 ]; then
    echo "lint-hotpath: FAILED" >&2
    exit 1
fi
echo "lint-hotpath: ok (sim core allocation-free, no wall clock in" \
     "deterministic modules)"
