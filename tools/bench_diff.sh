#!/usr/bin/env bash
# Bench drift checker: diff freshly-written BENCH_*.json files against
# the committed baselines at the repo root, with per-metric-class
# tolerances.  The bespoke smokes in tools/check.sh gate a handful of
# named rows with tight stories; this pass sweeps *every* metric the
# suites emit so a regression in a row nobody wrote a bespoke gate for
# still trips CI.
#
# Usage: tools/bench_diff.sh [fresh_dir]
#   fresh_dir  directory holding freshly-generated BENCH_*.json
#              (default: build/)
#
# Rules, keyed on the metric name:
#  - throughput (items_per_second, samples_per_sec, plans_per_sec,
#    hit_rate): FAIL if fresh < baseline * (1 - 30%)
#  - time (wall_ms / *_ms / real_time_ns / us_per_plan): FAIL if
#    fresh > baseline * (1 + 60%) — wide because CI walls are noisy,
#    tight enough to catch complexity-class regressions
#  - exactness flags (feasible, identical) and failure counters
#    (failures): FAIL on any change for the worse
#  - allocs_per_event: FAIL above 0.01 absolute (pooled-slot contract)
#  - everything else (counters, pool sizes, window counts): printed
#    for information only
#
# Benchmarks present on only one side are reported but never fail the
# run: new rows appear when benches grow, and a filtered fresh run
# (check.sh filters bench_sim_micro) legitimately omits rows.
set -euo pipefail

cd "$(dirname "$0")/.."

fresh_dir="${1:-build}"
if [ ! -d "$fresh_dir" ]; then
    echo "bench_diff: fresh dir '$fresh_dir' not found" >&2
    exit 2
fi

python3 - "$fresh_dir" <<'EOF'
import glob, json, os, sys

fresh_dir = sys.argv[1]
RATE_TOL = 0.30
TIME_TOL = 0.60

RATE_KEYS = ("items_per_second", "samples_per_sec", "plans_per_sec",
             "hit_rate")
TIME_SUFFIXES = ("wall_ms", "_ms", "real_time_ns", "us_per_plan")
EXACT_KEYS = ("feasible", "identical")
COUNT_UP_BAD = ("failures",)

def classify(key):
    if key in RATE_KEYS:
        return "rate"
    if key in EXACT_KEYS:
        return "exact"
    if key in COUNT_UP_BAD:
        return "count"
    if key == "allocs_per_event":
        return "allocs"
    if key.endswith(TIME_SUFFIXES) or key == "step_ms":
        return "time"
    return "info"

failed = []
checked = 0
fresh_files = sorted(glob.glob(os.path.join(fresh_dir, "BENCH_*.json")))
if not fresh_files:
    sys.exit("bench_diff: no BENCH_*.json in %s" % fresh_dir)

for fresh_path in fresh_files:
    name = os.path.basename(fresh_path)
    base_path = name  # committed baseline at the repo root
    if not os.path.exists(base_path):
        print("%-20s no committed baseline (new suite?)" % name)
        continue
    fresh = json.load(open(fresh_path))["benchmarks"]
    base = json.load(open(base_path))["benchmarks"]
    print("== %s ==" % name)
    for row in sorted(base):
        if row not in fresh:
            print("  %-28s only in baseline (filtered run?)" % row)
            continue
        for key in sorted(base[row]):
            if key not in fresh[row]:
                continue
            want, got = base[row][key], fresh[row][key]
            kind = classify(key)
            label = "%s.%s" % (row, key)
            if kind == "info":
                continue
            checked += 1
            if kind == "rate":
                if want > 0 and got < want * (1 - RATE_TOL):
                    failed.append("%s: %.3g < baseline %.3g -%d%%"
                                  % (label, got, want,
                                     RATE_TOL * 100))
            elif kind == "time":
                if want > 0 and got > want * (1 + TIME_TOL):
                    failed.append("%s: %.3g > baseline %.3g +%d%%"
                                  % (label, got, want,
                                     TIME_TOL * 100))
            elif kind == "exact":
                if got < want:
                    failed.append("%s: %g, baseline %g"
                                  % (label, got, want))
            elif kind == "count":
                if got > want:
                    failed.append("%s: %g > baseline %g"
                                  % (label, got, want))
            elif kind == "allocs":
                if got > 0.01:
                    failed.append("%s: %.3f > 0.01" % (label, got))
    for row in sorted(fresh):
        if row not in base:
            print("  %-28s new row (not in baseline)" % row)

print("bench_diff: %d gated metrics compared" % checked)
if failed:
    for f in failed:
        print("  DRIFT %s" % f)
    sys.exit("bench_diff: %d metric(s) drifted beyond tolerance - "
             "investigate, then refresh the committed baselines if "
             "deliberate" % len(failed))
print("bench_diff: all within tolerance")
EOF
