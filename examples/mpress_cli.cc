/**
 * @file
 * mpress_cli — command-line driver for the simulator.
 *
 *   mpress_cli [options]
 *     --model <preset>        bert-0.35b..6.2b, gpt-5.3b..25.5b,
 *                             gpt3-175b            [bert-0.64b]
 *     --system <name>         pipedream|dapple|gpipe [pipedream]
 *     --strategy <name>       none|recompute|gpu-cpu-swap|d2d-only|
 *                             mpress|zero-offload|zero-infinity
 *                                                  [mpress]
 *     --topology <name>       dgx1|dgx2            [dgx1]
 *     --microbatch <n>        per-microbatch samples [12]
 *     --mb-per-mini <n>       microbatches per minibatch [8]
 *     --minibatches <n>       training window length [2]
 *     --save-plan <file>      write the executed plan (plan format)
 *     --load-plan <file>      run a previously saved plan instead of
 *                             planning (forces a custom strategy)
 *     --verify-mode <name>    off|permissive|strict [permissive];
 *                             loaded plans are statically verified
 *                             and rejected on errors (strict also
 *                             rejects on warnings)
 *     --timeline <file>       write a chrome-trace JSON (includes
 *                             counter tracks when --metrics is on)
 *     --metrics <file>        write the observability bundle as JSON
 *                             (metrics, per-GPU memory timelines,
 *                             per-stream utilization)
 *
 * Exit status: 0 on success, 2 on OOM, 3 on plan rejected by
 * verification, 1 on usage errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "api/session.hh"
#include "compaction/serialize.hh"
#include "obs/export.hh"
#include "util/strings.hh"

namespace api = mpress::api;
namespace cp = mpress::compaction;
namespace hw = mpress::hw;
namespace mm = mpress::model;
namespace mu = mpress::util;
namespace pl = mpress::pipeline;
namespace rt = mpress::runtime;

namespace {

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "mpress_cli: %s (see file header for"
                         " options)\n",
                 msg);
    std::exit(1);
}

pl::SystemKind
parseSystem(const std::string &name)
{
    if (name == "pipedream")
        return pl::SystemKind::PipeDream;
    if (name == "dapple")
        return pl::SystemKind::Dapple;
    if (name == "gpipe")
        return pl::SystemKind::Gpipe;
    usage("unknown --system");
}

api::Strategy
parseStrategy(const std::string &name)
{
    if (name == "none")
        return api::Strategy::None;
    if (name == "recompute")
        return api::Strategy::Recompute;
    if (name == "gpu-cpu-swap")
        return api::Strategy::GpuCpuSwap;
    if (name == "d2d-only")
        return api::Strategy::D2dOnly;
    if (name == "mpress")
        return api::Strategy::MPressFull;
    if (name == "zero-offload")
        return api::Strategy::ZeroOffload;
    if (name == "zero-infinity")
        return api::Strategy::ZeroInfinity;
    usage("unknown --strategy");
}

api::VerifyMode
parseVerifyMode(const std::string &name)
{
    if (name == "off")
        return api::VerifyMode::Off;
    if (name == "permissive")
        return api::VerifyMode::Permissive;
    if (name == "strict")
        return api::VerifyMode::Strict;
    usage("unknown --verify-mode");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model = "bert-0.64b";
    std::string system = "pipedream";
    std::string strategy = "mpress";
    std::string topology = "dgx1";
    std::string save_plan, load_plan, timeline, metrics;
    std::string verify_mode = "permissive";
    int microbatch = 12, mb_per_mini = 8, minibatches = 2;

    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                usage(flag);
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--model"))
            model = need("--model needs a value");
        else if (!std::strcmp(argv[i], "--system"))
            system = need("--system needs a value");
        else if (!std::strcmp(argv[i], "--strategy"))
            strategy = need("--strategy needs a value");
        else if (!std::strcmp(argv[i], "--topology"))
            topology = need("--topology needs a value");
        else if (!std::strcmp(argv[i], "--microbatch"))
            microbatch = std::stoi(need("--microbatch"));
        else if (!std::strcmp(argv[i], "--mb-per-mini"))
            mb_per_mini = std::stoi(need("--mb-per-mini"));
        else if (!std::strcmp(argv[i], "--minibatches"))
            minibatches = std::stoi(need("--minibatches"));
        else if (!std::strcmp(argv[i], "--save-plan"))
            save_plan = need("--save-plan");
        else if (!std::strcmp(argv[i], "--load-plan"))
            load_plan = need("--load-plan");
        else if (!std::strcmp(argv[i], "--verify-mode"))
            verify_mode = need("--verify-mode");
        else if (!std::strcmp(argv[i], "--timeline"))
            timeline = need("--timeline");
        else if (!std::strcmp(argv[i], "--metrics"))
            metrics = need("--metrics");
        else
            usage("unknown option");
    }

    hw::Topology topo = topology == "dgx2"
                            ? hw::Topology::dgx2A100()
                            : hw::Topology::dgx1V100();
    if (topology != "dgx1" && topology != "dgx2")
        usage("--topology must be dgx1 or dgx2");

    api::SessionConfig cfg;
    cfg.model = mm::presetByName(model);
    cfg.microbatch = microbatch;
    cfg.system = parseSystem(system);
    cfg.numStages = topo.numGpus();
    cfg.microbatchesPerMinibatch = mb_per_mini;
    cfg.minibatches = minibatches;
    cfg.strategy = parseStrategy(strategy);
    cfg.verifyMode = parseVerifyMode(verify_mode);
    cfg.executor.recordTimeline = !timeline.empty();
    cfg.executor.recordMetrics = !metrics.empty();

    api::SessionResult result;
    if (!load_plan.empty()) {
        // Run the saved plan directly through the executor.
        std::ifstream in(load_plan);
        if (!in)
            usage("cannot read --load-plan file");
        std::stringstream buf;
        buf << in.rdbuf();
        auto parsed = cp::planFromText(buf.str());
        if (!parsed.ok) {
            std::fprintf(stderr, "bad plan: %s\n",
                         parsed.error.c_str());
            return 1;
        }
        api::MPressSession session(topo, cfg);
        if (cfg.verifyMode != api::VerifyMode::Off) {
            result.verification = session.verifyPlan(parsed.plan);
            if (!result.verification.clean())
                std::fputs(result.verification.render().c_str(),
                           stderr);
            if (!result.verification.ok()) {
                std::fprintf(stderr, "plan rejected: %s\n",
                             result.verification.summary().c_str());
                return 3;
            }
        }
        result.plan = parsed.plan;
        result.report = rt::runTraining(
            topo, session.model(), session.partition(),
            session.schedule(), parsed.plan, cfg.executor);
        result.oom = result.report.oom;
        result.samplesPerSec = result.report.samplesPerSec;
        result.tflops = result.report.tflops;
        result.maxGpuPeak = result.report.maxGpuPeak();
        result.name = model + "/" + system + "/loaded-plan";
    } else {
        result = api::runSession(topo, cfg);
        if (result.rejected) {
            std::fputs(result.verification.render().c_str(), stderr);
            std::fprintf(stderr, "plan rejected: %s\n",
                         result.verification.summary().c_str());
            return 3;
        }
    }

    std::printf("%s on %s: ", result.name.c_str(),
                topo.name().c_str());
    if (result.oom) {
        std::printf("OOM (gpu %d)\n", result.report.oomGpu);
        return 2;
    }
    std::printf("%.1f samples/s, %.1f TFLOPS, max GPU peak %s\n",
                result.samplesPerSec, result.tflops,
                mu::formatBytes(result.maxGpuPeak).c_str());

    if (!save_plan.empty()) {
        std::ofstream out(save_plan);
        out << cp::planToText(result.plan);
        std::printf("plan written to %s\n", save_plan.c_str());
    }
    if (!timeline.empty()) {
        std::ofstream out(timeline);
        result.report.trace.exportChromeTrace(out);
        std::printf("trace written to %s\n", timeline.c_str());
    }
    if (!metrics.empty()) {
        std::ofstream out(metrics);
        mpress::obs::exportJson(out, result.report.observability);
        out << "\n";
        std::printf("metrics written to %s\n", metrics.c_str());
    }
    return 0;
}
