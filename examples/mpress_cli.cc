/**
 * @file
 * mpress_cli — command-line driver for the simulator.
 *
 *   mpress_cli [options]
 *     --model <preset>        bert-0.35b..6.2b, gpt-5.3b..25.5b,
 *                             gpt3-175b            [bert-0.64b]
 *     --system <name>         pipedream|dapple|gpipe [pipedream]
 *     --strategy <name>       none|recompute|gpu-cpu-swap|d2d-only|
 *                             mpress|zero-offload|zero-infinity
 *                                                  [mpress]
 *     --topology <name>       dgx1|dgx2, or a cluster preset such as
 *                             2x-dgx2, 8x-hgx-h100 or any
 *                             <N>x-<node> with N in 1..64 [dgx1]
 *     --cluster <spec|name>   build a multi-node cluster topology
 *                             from a JSON spec file or a preset name
 *                             (overrides --topology); the spec is
 *                             statically verified and rejected
 *                             (exit 3) on errors.  Spec fields:
 *                             {"name","nodes","node","nic",
 *                              "nicsPerNode","nicGbps",
 *                              "nicLatencyUs","nodeIds":[...]}
 *                             with node in dgx1|dgx1-p100|dgx2|
 *                             hgx-h100|dual-a100 and nic in
 *                             ib-hdr|ib-ndr|roce100
 *     --microbatch <n>        per-microbatch samples [12]
 *     --mb-per-mini <n>       microbatches per minibatch [8]
 *     --minibatches <n>       training window length [2]
 *     --threads <n>           worker threads for the planner's
 *                             emulator-feedback search, and for
 *                             running sweep scenarios [1]
 *     --analyze               print the static analysis certificate
 *                             of the executed plan (per-GPU
 *                             peak-memory intervals, latency lower
 *                             bound, throughput upper bound)
 *     --analytic-prune        planner strategies only: score ladder
 *                             trials with the static analyzer first
 *                             and skip emulation for provably
 *                             non-acceptable ones (same final plan)
 *     --portfolio             planner strategies only: race the
 *                             greedy wavefront against a
 *                             simulated-annealing walker and an
 *                             analysis-guided best-first explorer
 *                             on the --threads pool; prints one
 *                             accounting row per strategy
 *     --deadline-ms <ms>      anytime budget for the refinement
 *                             race, checked between wavefront
 *                             rounds; always returns a verified
 *                             plan [0 = no deadline]
 *     --save-plan <file>      write the executed plan (plan format)
 *     --load-plan <file>      run a previously saved plan instead of
 *                             planning (forces a custom strategy)
 *     --verify-mode <name>    off|permissive|strict [permissive];
 *                             loaded plans are statically verified
 *                             and rejected on errors (strict also
 *                             rejects on warnings)
 *     --timeline <file>       write a chrome-trace JSON (includes
 *                             counter tracks when --metrics is on)
 *     --metrics <file>        write the observability bundle as JSON
 *                             (metrics, per-GPU memory timelines,
 *                             per-stream utilization)
 *     --faults <spec.json>    inject a fault scenario into the run
 *                             (see below); the scenario is statically
 *                             verified against the topology first and
 *                             rejected (exit 3) on errors
 *     --no-fault-ladder       disable the degradation ladder: an
 *                             injected transfer failure is terminal
 *                             instead of retried / demoted
 *
 *   Fault spec — {"name","seed","events":[...]} where each event is
 *     {"type":"link-degrade",  "start_ms","end_ms","src","dst",
 *      "factor"}                bandwidth multiplier on one NVLink
 *     {"type":"link-degrade",  "start_ms","end_ms","gpu","factor"}
 *                               ... or on one GPU's PCIe lanes
 *     {"type":"transfer-fail", "start_ms","end_ms","src"[,"dst"],
 *      "probability"}           D2D stripes fail with probability p
 *     {"type":"gpu-straggle",  "start_ms","end_ms","gpu","factor"}
 *                               compute slowdown on one GPU
 *     {"type":"host-pressure", "start_ms","end_ms","bytes_gb"}
 *                               shrink the pinned-host pool
 *
 *   Robustness mode — replay one plan across a scenario matrix:
 *     --robustness <file>     {"scenarios":[<fault spec>,...]}; plans
 *                             fault-free, then replays the final plan
 *                             under every scenario on the --threads
 *                             pool and prints a JSON report (rows in
 *                             spec order, nearest-rank percentiles)
 *     --robustness-out <file> write the JSON report here instead
 *     --robustness-csv <file> also write the report as CSV
 *
 *   Sweep mode — plan/emulate many configurations in one process:
 *     --sweep <spec.json>     run every scenario in the spec across
 *                             the --threads pool and print a combined
 *                             JSON report to stdout
 *     --sweep-out <file>      write the JSON report here instead
 *     --sweep-csv <file>      also write the report as CSV
 *
 *   The spec is {"scenarios":[{...},...]}; each scenario object may
 *   set "name", "model", "system", "strategy", "topology",
 *   "microbatch", "mbPerMini", "minibatches", "verifyMode" — any
 *   omitted field inherits the corresponding command-line option.
 *   Report rows keep spec order whatever the thread count.
 *
 * Exit status: 0 on success, 3 on plan rejected by verification,
 * 1 on usage/spec errors, 2 on a malformed flag value (a numeric
 * flag that does not parse or is out of range) — and 2 on OOM of a
 * single run (a malformed flag never starts a run, so the phases
 * cannot be confused).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "api/session.hh"
#include "cluster/cluster.hh"
#include "compaction/serialize.hh"
#include "fault/scenario.hh"
#include "obs/export.hh"
#include "planner/search.hh"
#include "util/json.hh"
#include "util/pool.hh"
#include "util/strings.hh"
#include "verify/verify.hh"

namespace api = mpress::api;
namespace cp = mpress::compaction;
namespace ft = mpress::fault;
namespace hw = mpress::hw;
namespace mm = mpress::model;
namespace mu = mpress::util;
namespace pl = mpress::pipeline;
namespace rt = mpress::runtime;
namespace vf = mpress::verify;

namespace {

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "mpress_cli: %s (see file header for"
                         " options)\n",
                 msg);
    std::exit(1);
}

/** Malformed flag *values* exit 2 (vs 1 for unknown flags), so
 *  scripts can tell "you typo'd an option" from "that value does not
 *  parse". */
[[noreturn]] void
badValue(const char *flag, const std::string &got)
{
    std::fprintf(stderr,
                 "mpress_cli: %s: malformed value '%s' (expected a"
                 " number in range)\n",
                 flag, got.c_str());
    std::exit(2);
}

/** Checked std::stoi replacement: a malformed or out-of-range value
 *  is a usage error, never an uncaught std::invalid_argument. */
int
parseIntFlag(const char *flag, const std::string &text)
{
    int value = 0;
    if (!mu::parseInt(text, &value))
        badValue(flag, text);
    return value;
}

double
parseDoubleFlag(const char *flag, const std::string &text)
{
    double value = 0.0;
    if (!mu::parseDouble(text, &value))
        badValue(flag, text);
    return value;
}

pl::SystemKind
parseSystem(const std::string &name)
{
    pl::SystemKind kind;
    if (!api::systemKindFromName(name, &kind))
        usage("unknown --system");
    return kind;
}

api::Strategy
parseStrategy(const std::string &name)
{
    api::Strategy strategy;
    if (!api::strategyFromName(name, &strategy))
        usage("unknown --strategy");
    return strategy;
}

api::VerifyMode
parseVerifyMode(const std::string &name)
{
    api::VerifyMode mode;
    if (!api::verifyModeFromName(name, &mode))
        usage("unknown --verify-mode");
    return mode;
}

hw::Topology
parseTopology(const std::string &name)
{
    std::optional<hw::Topology> topo = api::topologyFromName(name);
    if (!topo)
        usage("--topology must be dgx1, dgx2 or a cluster preset"
              " (e.g. 2x-dgx2)");
    return *topo;
}

namespace cl = mpress::cluster;

std::string readFile(const std::string &path, const char *what);

/**
 * Resolve --cluster: a preset name or a JSON spec file, gated by
 * verify::verifyClusterSpec exactly like --faults gates scenarios —
 * findings go to stderr and a rejected spec exits 3 without building
 * anything.
 */
hw::Topology
parseCluster(const std::string &arg)
{
    cl::ClusterSpec spec;
    if (std::optional<cl::ClusterSpec> preset =
            cl::clusterByName(arg)) {
        spec = *preset;
    } else {
        cl::ParsedClusterSpec parsed = cl::parseClusterSpec(
            readFile(arg, "cannot read --cluster file"));
        if (!parsed.ok) {
            std::fprintf(stderr,
                         "mpress_cli: bad cluster spec: %s\n",
                         parsed.error.c_str());
            std::exit(1);
        }
        spec = parsed.spec;
    }
    vf::Report report = vf::verifyClusterSpec(spec);
    if (!report.clean())
        std::fputs(report.render().c_str(), stderr);
    if (!report.ok()) {
        std::fprintf(stderr, "cluster spec \"%s\" rejected: %s\n",
                     spec.name.c_str(), report.summary().c_str());
        std::exit(3);
    }
    return cl::buildCluster(spec);
}

/** One sweep scenario: the base CLI options overridden by one spec
 *  object's fields. */
struct Scenario
{
    std::string name;
    std::string model, system, strategy, topology, verifyMode;
    int microbatch, mbPerMini, minibatches;
};

/** Parse the --sweep spec; exits with a message on malformed input. */
std::vector<Scenario>
parseSweepSpec(const std::string &path, const Scenario &defaults)
{
    std::ifstream in(path);
    if (!in)
        usage("cannot read --sweep file");
    std::stringstream buf;
    buf << in.rdbuf();
    mu::ParsedJson doc = mu::jsonParse(buf.str());
    if (!doc.ok) {
        std::fprintf(stderr, "mpress_cli: bad sweep spec: %s\n",
                     doc.error.c_str());
        std::exit(1);
    }
    const mu::JsonValue *list = doc.value.find("scenarios");
    if (!list || !list->isArray() || list->items().empty())
        usage("sweep spec needs a non-empty \"scenarios\" array");

    std::vector<Scenario> out;
    for (const auto &item : list->items()) {
        if (!item.isObject())
            usage("every sweep scenario must be a JSON object");
        Scenario s = defaults;
        s.model = item.stringOr("model", defaults.model);
        s.system = item.stringOr("system", defaults.system);
        s.strategy = item.stringOr("strategy", defaults.strategy);
        s.topology = item.stringOr("topology", defaults.topology);
        s.verifyMode =
            item.stringOr("verifyMode", defaults.verifyMode);
        s.microbatch = static_cast<int>(item.numberOr(
            "microbatch", defaults.microbatch));
        s.mbPerMini = static_cast<int>(
            item.numberOr("mbPerMini", defaults.mbPerMini));
        s.minibatches = static_cast<int>(item.numberOr(
            "minibatches", defaults.minibatches));
        s.name = item.stringOr(
            "name", s.model + "/" + s.system + "/" + s.strategy +
                        "/" + s.topology);
        out.push_back(std::move(s));
    }
    return out;
}

/** Run every scenario across the pool; rows come back in spec order
 *  regardless of which worker finished first. */
std::vector<mpress::obs::SweepRow>
runSweep(const std::vector<Scenario> &scenarios, int threads)
{
    std::vector<mpress::obs::SweepRow> rows(scenarios.size());
    mu::ThreadPool pool(threads);
    pool.parallelFor(scenarios.size(), [&](std::size_t i) {
        const Scenario &s = scenarios[i];
        // Each scenario builds its own topology and session; the
        // planner inside runs serially — the sweep parallelizes
        // across scenarios, not within one.
        hw::Topology topo = parseTopology(s.topology);
        api::SessionConfig cfg;
        cfg.model = mm::presetByName(s.model);
        cfg.microbatch = s.microbatch;
        cfg.system = parseSystem(s.system);
        cfg.numStages = topo.numGpus();
        cfg.microbatchesPerMinibatch = s.mbPerMini;
        cfg.minibatches = s.minibatches;
        cfg.strategy = parseStrategy(s.strategy);
        cfg.verifyMode = parseVerifyMode(s.verifyMode);

        auto t0 = std::chrono::steady_clock::now();
        api::SessionResult result = api::runSession(topo, cfg);
        auto t1 = std::chrono::steady_clock::now();

        mpress::obs::SweepRow &row = rows[i];
        row.name = s.name;
        row.model = s.model;
        row.system = s.system;
        row.strategy = s.strategy;
        row.topology = s.topology;
        row.oom = result.oom;
        row.rejected = result.rejected;
        row.samplesPerSec = result.samplesPerSec;
        row.tflops = result.tflops;
        row.maxGpuPeak = result.maxGpuPeak;
        row.planIterations = result.planResult.iterations;
        row.planMs =
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count();
    });
    return rows;
}

/** Slurp @p path; exits with @p what in the message on failure. */
std::string
readFile(const std::string &path, const char *what)
{
    std::ifstream in(path);
    if (!in)
        usage(what);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Statically verify @p scenario; prints findings and exits 3 when
 *  the schedule is rejected. */
void
gateScenario(const hw::Topology &topo, const ft::Scenario &scenario)
{
    vf::Report report = vf::verifyScenario(topo, scenario);
    if (!report.clean())
        std::fputs(report.render().c_str(), stderr);
    if (!report.ok()) {
        std::fprintf(stderr,
                     "fault scenario \"%s\" rejected: %s\n",
                     scenario.name.c_str(),
                     report.summary().c_str());
        std::exit(3);
    }
}

/** One-line resilience digest after a fault-injected run. */
void
printFaultSummary(const rt::FaultSummary &f)
{
    std::printf("faults: %d failed transfers, %d retries,"
                " %d swap fallbacks, %d recompute fallbacks,"
                " %d straggled tasks, %d pressure windows\n",
                f.transferFailures, f.retries, f.fallbackGpuCpuSwap,
                f.fallbackRecompute, f.straggledTasks,
                f.hostPressureEvents);
    std::printf("faults: %d healthy minibatches (%.1f samples/s),"
                " %d degraded (%.1f samples/s)\n",
                f.healthyMinibatches, f.healthySamplesPerSec,
                f.degradedMinibatches, f.degradedSamplesPerSec);
}

/** Flatten the planner's robustness rows into the exporter shape. */
std::vector<mpress::obs::RobustnessRow>
toObsRows(const std::vector<mpress::planner::RobustnessRow> &rows)
{
    std::vector<mpress::obs::RobustnessRow> out;
    out.reserve(rows.size());
    for (const auto &r : rows) {
        mpress::obs::RobustnessRow o;
        o.scenario = r.scenario;
        o.oom = r.report.oom;
        o.samplesPerSec = r.report.samplesPerSec;
        o.throughputRatio = r.throughputRatio;
        o.transferFailures = r.report.faults.transferFailures;
        o.retries = r.report.faults.retries;
        o.fallbackGpuCpuSwap = r.report.faults.fallbackGpuCpuSwap;
        o.fallbackRecompute = r.report.faults.fallbackRecompute;
        o.straggledTasks = r.report.faults.straggledTasks;
        o.hostPressureEvents = r.report.faults.hostPressureEvents;
        out.push_back(std::move(o));
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model = "bert-0.64b";
    std::string system = "pipedream";
    std::string strategy = "mpress";
    std::string topology = "dgx1";
    std::string save_plan, load_plan, timeline, metrics;
    std::string sweep, sweep_out, sweep_csv;
    std::string faults, robustness, robustness_out, robustness_csv;
    std::string cluster_arg;
    std::string verify_mode = "permissive";
    int microbatch = 12, mb_per_mini = 8, minibatches = 2;
    int threads = 1;
    bool fault_ladder = true;
    bool analyze = false;
    bool analytic_prune = false;
    bool portfolio = false;
    double deadline_ms = 0.0;

    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                usage(flag);
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--model"))
            model = need("--model needs a value");
        else if (!std::strcmp(argv[i], "--system"))
            system = need("--system needs a value");
        else if (!std::strcmp(argv[i], "--strategy"))
            strategy = need("--strategy needs a value");
        else if (!std::strcmp(argv[i], "--topology"))
            topology = need("--topology needs a value");
        else if (!std::strcmp(argv[i], "--cluster"))
            cluster_arg = need("--cluster needs a value");
        else if (!std::strcmp(argv[i], "--microbatch"))
            microbatch =
                parseIntFlag("--microbatch", need("--microbatch"));
        else if (!std::strcmp(argv[i], "--mb-per-mini"))
            mb_per_mini =
                parseIntFlag("--mb-per-mini", need("--mb-per-mini"));
        else if (!std::strcmp(argv[i], "--minibatches"))
            minibatches =
                parseIntFlag("--minibatches", need("--minibatches"));
        else if (!std::strcmp(argv[i], "--threads"))
            threads = parseIntFlag("--threads", need("--threads"));
        else if (!std::strcmp(argv[i], "--sweep"))
            sweep = need("--sweep");
        else if (!std::strcmp(argv[i], "--sweep-out"))
            sweep_out = need("--sweep-out");
        else if (!std::strcmp(argv[i], "--sweep-csv"))
            sweep_csv = need("--sweep-csv");
        else if (!std::strcmp(argv[i], "--save-plan"))
            save_plan = need("--save-plan");
        else if (!std::strcmp(argv[i], "--load-plan"))
            load_plan = need("--load-plan");
        else if (!std::strcmp(argv[i], "--verify-mode"))
            verify_mode = need("--verify-mode");
        else if (!std::strcmp(argv[i], "--timeline"))
            timeline = need("--timeline");
        else if (!std::strcmp(argv[i], "--metrics"))
            metrics = need("--metrics");
        else if (!std::strcmp(argv[i], "--faults"))
            faults = need("--faults");
        else if (!std::strcmp(argv[i], "--no-fault-ladder"))
            fault_ladder = false;
        else if (!std::strcmp(argv[i], "--analyze"))
            analyze = true;
        else if (!std::strcmp(argv[i], "--analytic-prune"))
            analytic_prune = true;
        else if (!std::strcmp(argv[i], "--portfolio"))
            portfolio = true;
        else if (!std::strcmp(argv[i], "--deadline-ms"))
            deadline_ms = parseDoubleFlag("--deadline-ms",
                                          need("--deadline-ms"));
        else if (!std::strcmp(argv[i], "--robustness"))
            robustness = need("--robustness");
        else if (!std::strcmp(argv[i], "--robustness-out"))
            robustness_out = need("--robustness-out");
        else if (!std::strcmp(argv[i], "--robustness-csv"))
            robustness_csv = need("--robustness-csv");
        else
            usage("unknown option");
    }

    if (threads < 1)
        usage("--threads must be >= 1");

    if (!sweep.empty()) {
        Scenario defaults{"",         model,      system,
                          strategy,   topology,   verify_mode,
                          microbatch, mb_per_mini, minibatches};
        auto scenarios = parseSweepSpec(sweep, defaults);
        auto rows = runSweep(scenarios, threads);
        if (!sweep_csv.empty()) {
            std::ofstream out(sweep_csv);
            mpress::obs::exportSweepCsv(out, rows);
            std::fprintf(stderr, "sweep CSV written to %s\n",
                         sweep_csv.c_str());
        }
        if (!sweep_out.empty()) {
            std::ofstream out(sweep_out);
            mpress::obs::exportSweepJson(out, rows);
            out << "\n";
            std::fprintf(stderr, "sweep report written to %s\n",
                         sweep_out.c_str());
        } else {
            std::stringstream report;
            mpress::obs::exportSweepJson(report, rows);
            std::printf("%s\n", report.str().c_str());
        }
        return 0;
    }

    hw::Topology topo = cluster_arg.empty()
                            ? parseTopology(topology)
                            : parseCluster(cluster_arg);

    api::SessionConfig cfg;
    cfg.model = mm::presetByName(model);
    cfg.microbatch = microbatch;
    cfg.system = parseSystem(system);
    cfg.numStages = topo.numGpus();
    cfg.microbatchesPerMinibatch = mb_per_mini;
    cfg.minibatches = minibatches;
    cfg.strategy = parseStrategy(strategy);
    cfg.verifyMode = parseVerifyMode(verify_mode);
    cfg.planner.threads = threads;
    cfg.planner.analyticPrune = analytic_prune;
    cfg.planner.portfolio = portfolio;
    cfg.planner.deadlineMs = deadline_ms;
    if (deadline_ms < 0)
        usage("--deadline-ms must be >= 0");
    cfg.executor.recordTimeline = !timeline.empty();
    cfg.executor.recordMetrics = !metrics.empty();
    cfg.executor.faultLadder = fault_ladder;

    // The scenario must outlive every executor that reads it
    // (ExecutorConfig::faults is non-owning).
    ft::Scenario scenario;
    if (!faults.empty()) {
        if (!robustness.empty())
            usage("--faults and --robustness are exclusive");
        ft::ParsedScenario parsed = ft::parseScenario(
            readFile(faults, "cannot read --faults file"));
        if (!parsed.ok) {
            std::fprintf(stderr, "mpress_cli: bad fault spec: %s\n",
                         parsed.error.c_str());
            return 1;
        }
        scenario = parsed.scenario;
        gateScenario(topo, scenario);
        cfg.executor.faults = &scenario;
    }

    if (!robustness.empty()) {
        if (cfg.strategy == api::Strategy::ZeroOffload ||
            cfg.strategy == api::Strategy::ZeroInfinity)
            usage("--robustness needs a pipeline strategy");
        ft::ParsedScenarioMatrix matrix = ft::parseScenarioMatrix(
            readFile(robustness, "cannot read --robustness file"));
        if (!matrix.ok) {
            std::fprintf(stderr,
                         "mpress_cli: bad robustness spec: %s\n",
                         matrix.error.c_str());
            return 1;
        }
        if (matrix.scenarios.empty())
            usage("robustness spec has no scenarios");
        for (const auto &s : matrix.scenarios)
            gateScenario(topo, s);

        // Plan (and baseline) fault-free, then replay the finished
        // plan under every scenario across the pool.
        api::MPressSession session(topo, cfg);
        api::SessionResult planned = session.run();
        if (planned.rejected) {
            std::fputs(planned.verification.render().c_str(),
                       stderr);
            return 3;
        }
        mu::ThreadPool pool(threads);
        mpress::planner::SearchDriver driver(
            topo, session.model(), session.partition(),
            session.schedule(), cfg.executor, pool);
        mpress::planner::RobustnessResult rr =
            driver.evaluateRobustness(planned.plan,
                                      matrix.scenarios);

        mpress::obs::RobustnessSummary summary;
        summary.baselineSamplesPerSec = rr.baseline.samplesPerSec;
        summary.worst = rr.worst;
        summary.p10 = rr.p10;
        summary.p50 = rr.p50;
        auto rows = toObsRows(rr.rows);
        if (!robustness_csv.empty()) {
            std::ofstream out(robustness_csv);
            mpress::obs::exportRobustnessCsv(out, rows);
            std::fprintf(stderr, "robustness CSV written to %s\n",
                         robustness_csv.c_str());
        }
        if (!robustness_out.empty()) {
            std::ofstream out(robustness_out);
            mpress::obs::exportRobustnessJson(out, summary, rows);
            out << "\n";
            std::fprintf(stderr, "robustness report written to %s\n",
                         robustness_out.c_str());
        } else {
            std::stringstream report;
            mpress::obs::exportRobustnessJson(report, summary, rows);
            std::printf("%s\n", report.str().c_str());
        }
        std::fprintf(stderr,
                     "robustness over %zu scenarios: worst %.2f,"
                     " p10 %.2f, p50 %.2f of baseline\n",
                     matrix.scenarios.size(), rr.worst, rr.p10,
                     rr.p50);
        return 0;
    }

    api::SessionResult result;
    if (!load_plan.empty()) {
        // Run the saved plan directly through the executor.
        std::ifstream in(load_plan);
        if (!in)
            usage("cannot read --load-plan file");
        std::stringstream buf;
        buf << in.rdbuf();
        auto parsed = cp::planFromText(buf.str());
        if (!parsed.ok) {
            std::fprintf(stderr, "bad plan: %s\n",
                         parsed.error.c_str());
            return 1;
        }
        api::MPressSession session(topo, cfg);
        if (cfg.verifyMode != api::VerifyMode::Off) {
            result.verification = session.verifyPlan(parsed.plan);
            if (!result.verification.clean())
                std::fputs(result.verification.render().c_str(),
                           stderr);
            if (!result.verification.ok()) {
                std::fprintf(stderr, "plan rejected: %s\n",
                             result.verification.summary().c_str());
                return 3;
            }
        }
        result.plan = parsed.plan;
        result.report = rt::runTraining(
            topo, session.model(), session.partition(),
            session.schedule(), parsed.plan, cfg.executor);
        result.oom = result.report.oom;
        result.samplesPerSec = result.report.samplesPerSec;
        result.tflops = result.report.tflops;
        result.maxGpuPeak = result.report.maxGpuPeak();
        result.name = model + "/" + system + "/loaded-plan";
    } else {
        result = api::runSession(topo, cfg);
        if (result.rejected) {
            std::fputs(result.verification.render().c_str(), stderr);
            std::fprintf(stderr, "plan rejected: %s\n",
                         result.verification.summary().c_str());
            return 3;
        }
    }

    std::printf("%s on %s: ", result.name.c_str(),
                topo.name().c_str());
    if (result.oom) {
        std::printf("OOM (gpu %d)\n", result.report.oomGpu);
        if (result.report.faults.enabled)
            printFaultSummary(result.report.faults);
        return 2;
    }
    std::printf("%.1f samples/s, %.1f TFLOPS, max GPU peak %s\n",
                result.samplesPerSec, result.tflops,
                mu::formatBytes(result.maxGpuPeak).c_str());
    if (result.report.faults.enabled)
        printFaultSummary(result.report.faults);

    if (!result.planResult.strategyStats.empty()) {
        for (std::size_t i = 0;
             i < result.planResult.strategyStats.size(); ++i) {
            const auto &s = result.planResult.strategyStats[i];
            std::printf(
                "strategy %zu %-16s %3llu trials, %2llu commits, "
                "best %.1f samples/s%s%s\n",
                i, s.name.c_str(),
                static_cast<unsigned long long>(s.proposed),
                static_cast<unsigned long long>(s.committed),
                s.bestScore,
                static_cast<int>(i) ==
                        result.planResult.winnerStrategy
                    ? " [winner]"
                    : "",
                s.exhausted ? "" : " (cut off by deadline)");
        }
    }

    if (analyze) {
        // ZeRO baselines carry no plan to analyze.
        if (cfg.strategy == api::Strategy::ZeroOffload ||
            cfg.strategy == api::Strategy::ZeroInfinity) {
            std::fprintf(stderr,
                         "--analyze needs a pipeline strategy\n");
        } else {
            api::MPressSession session(topo, cfg);
            std::fputs(
                session.analyzePlan(result.plan).render().c_str(),
                stdout);
        }
    }
    if (!save_plan.empty()) {
        std::ofstream out(save_plan);
        out << cp::planToText(result.plan);
        std::printf("plan written to %s\n", save_plan.c_str());
    }
    if (!timeline.empty()) {
        std::ofstream out(timeline);
        result.report.trace.exportChromeTrace(out);
        std::printf("trace written to %s\n", timeline.c_str());
    }
    if (!metrics.empty()) {
        std::ofstream out(metrics);
        mpress::obs::exportJson(out, result.report.observability);
        out << "\n";
        std::printf("metrics written to %s\n", metrics.c_str());
    }
    return 0;
}
