/**
 * @file
 * mpress_verify — static plan checker ("linter") CLI.
 *
 * Verifies a serialized compaction plan against a job description
 * without running the simulator, printing the diagnostic table on any
 * findings:
 *
 *   mpress_verify --plan <file> [options]
 *     --plan <file>           plan to check (required; plan format)
 *     --model <preset>        bert-0.35b..gpt3-175b [bert-0.64b]
 *     --system <name>         pipedream|dapple|gpipe [pipedream]
 *     --topology <name>       dgx1|dgx2            [dgx1]
 *     --microbatch <n>        per-microbatch samples [12]
 *     --mb-per-mini <n>       microbatches per minibatch [8]
 *     --minibatches <n>       training window length [2]
 *     --strict                promote warnings to errors
 *     --analyze               also run the static plan analyzer:
 *                             prints the certificate (per-GPU
 *                             peak-memory intervals, latency lower
 *                             bound, throughput upper bound) and adds
 *                             the cap-proved-overflow / cap-unproven
 *                             rules to the verification pass
 *
 * Exit status: 0 when the plan verifies clean of errors, 3 when it is
 * rejected, 1 on usage errors.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "api/session.hh"
#include "compaction/serialize.hh"

namespace api = mpress::api;
namespace cp = mpress::compaction;
namespace hw = mpress::hw;
namespace mm = mpress::model;
namespace pl = mpress::pipeline;

namespace {

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "mpress_verify: %s (see file header for"
                         " options)\n",
                 msg);
    std::exit(1);
}

pl::SystemKind
parseSystem(const std::string &name)
{
    if (name == "pipedream")
        return pl::SystemKind::PipeDream;
    if (name == "dapple")
        return pl::SystemKind::Dapple;
    if (name == "gpipe")
        return pl::SystemKind::Gpipe;
    usage("unknown --system");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model = "bert-0.64b";
    std::string system = "pipedream";
    std::string topology = "dgx1";
    std::string plan_file;
    int microbatch = 12, mb_per_mini = 8, minibatches = 2;
    bool strict = false;
    bool analyze = false;

    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                usage(flag);
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--plan"))
            plan_file = need("--plan needs a value");
        else if (!std::strcmp(argv[i], "--model"))
            model = need("--model needs a value");
        else if (!std::strcmp(argv[i], "--system"))
            system = need("--system needs a value");
        else if (!std::strcmp(argv[i], "--topology"))
            topology = need("--topology needs a value");
        else if (!std::strcmp(argv[i], "--microbatch"))
            microbatch = std::stoi(need("--microbatch"));
        else if (!std::strcmp(argv[i], "--mb-per-mini"))
            mb_per_mini = std::stoi(need("--mb-per-mini"));
        else if (!std::strcmp(argv[i], "--minibatches"))
            minibatches = std::stoi(need("--minibatches"));
        else if (!std::strcmp(argv[i], "--strict"))
            strict = true;
        else if (!std::strcmp(argv[i], "--analyze"))
            analyze = true;
        else
            usage("unknown option");
    }
    if (plan_file.empty())
        usage("--plan is required");

    hw::Topology topo = topology == "dgx2"
                            ? hw::Topology::dgx2A100()
                            : hw::Topology::dgx1V100();
    if (topology != "dgx1" && topology != "dgx2")
        usage("--topology must be dgx1 or dgx2");

    std::ifstream in(plan_file);
    if (!in)
        usage("cannot read --plan file");
    std::stringstream buf;
    buf << in.rdbuf();
    auto parsed = cp::planFromText(buf.str());
    if (!parsed.ok) {
        std::fprintf(stderr, "bad plan: %s\n", parsed.error.c_str());
        return 3;
    }

    api::SessionConfig cfg;
    cfg.model = mm::presetByName(model);
    cfg.microbatch = microbatch;
    cfg.system = parseSystem(system);
    cfg.numStages = topo.numGpus();
    cfg.microbatchesPerMinibatch = mb_per_mini;
    cfg.minibatches = minibatches;
    cfg.verifyMode = strict ? api::VerifyMode::Strict
                            : api::VerifyMode::Permissive;
    cfg.verifyOptions.analysis = analyze;

    api::MPressSession session(topo, cfg);
    if (analyze)
        std::fputs(session.analyzePlan(parsed.plan).render().c_str(),
                   stdout);
    auto report = session.verifyPlan(parsed.plan);
    if (!report.clean())
        std::fputs(report.render().c_str(), stdout);
    std::printf("%s: %s\n", plan_file.c_str(),
                report.summary().c_str());
    return report.ok() ? 0 : 3;
}
