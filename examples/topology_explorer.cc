/**
 * @file
 * Topology explorer: run the Figure-6 device-mapping search on the
 * DGX-1 mesh, the DGX-2 switch fabric, and a custom asymmetric
 * 4-GPU server, printing the chosen stage placement, spare-memory
 * grants and the resulting striping of a sample tensor.
 *
 * Run: ./build/examples/topology_explorer
 */

#include <cstdio>
#include <iostream>

#include "compaction/striping.hh"
#include "planner/mapper.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace cp = mpress::compaction;
namespace hw = mpress::hw;
namespace pn = mpress::planner;
namespace mu = mpress::util;

namespace {

void
explore(const hw::Topology &topo,
        const std::vector<mu::Bytes> &demand, mu::Bytes capacity)
{
    std::printf("=== %s (%d GPUs, %s) ===\n", topo.name().c_str(),
                topo.numGpus(),
                topo.symmetric() ? "symmetric NVSwitch"
                                 : "asymmetric NVLink mesh");

    auto result = pn::searchDeviceMapping(topo, demand, capacity);
    std::printf("evaluated %ld placements; overflow coverage %.0f%%\n",
                result.evaluated, result.coverage * 100.0);

    std::printf("stage -> GPU:");
    for (std::size_t s = 0; s < result.stageToGpu.size(); ++s)
        std::printf(" %zu->%d", s, result.stageToGpu[s]);
    std::printf("\n");

    for (const auto &[exporter, grants] : result.grants) {
        std::printf("exporter GPU%d grants:", exporter);
        for (const auto &g : grants) {
            std::printf(" GPU%d:%s (%d lanes)", g.importerGpu,
                        mu::formatBytes(g.budget).c_str(),
                        topo.nvlinkLanes(exporter, g.importerGpu));
        }
        std::printf("\n");

        // Show how a 216 MB tensor (Table III's t1) stripes out.
        auto plan = cp::makeStripePlan(topo, exporter, grants,
                                       216 * mu::kMB);
        if (!plan.empty()) {
            std::printf("  216 MB tensor stripes:");
            for (const auto &stripe : plan.stripes) {
                std::printf(" %s->GPU%d/%d-lanes",
                            mu::formatBytes(stripe.bytes).c_str(),
                            stripe.targetGpu, stripe.lanes);
            }
            std::printf("  (drain %s)\n",
                        mu::formatTime(cp::stripePlanTime(
                                           topo, exporter, plan))
                            .c_str());
        }
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    // A memory-demand profile with the characteristic inter-operator
    // imbalance: early stages heavy, late stages light.
    std::vector<mu::Bytes> demand = {
        38 * mu::kGB, 33 * mu::kGB, 28 * mu::kGB, 24 * mu::kGB,
        20 * mu::kGB, 15 * mu::kGB, 11 * mu::kGB, 3 * mu::kGB};

    explore(hw::Topology::dgx1V100(), demand, 28 * mu::kGB);
    explore(hw::Topology::dgx2A100(), demand, 35 * mu::kGB);

    // A custom asymmetric 4-GPU box: GPU0-GPU1 fat (3 lanes),
    // a ring of single lanes elsewhere.
    hw::Topology custom("Custom-4GPU", hw::GpuSpec::v100(), 4);
    custom.setNvlinkLanes(0, 1, 3);
    custom.setNvlinkLanes(1, 2, 1);
    custom.setNvlinkLanes(2, 3, 1);
    custom.setNvlinkLanes(3, 0, 2);
    custom.setHostMemory(256 * mu::kGB);
    std::vector<mu::Bytes> demand4 = {40 * mu::kGB, 26 * mu::kGB,
                                      12 * mu::kGB, 6 * mu::kGB};
    explore(custom, demand4, 28 * mu::kGB);
    return 0;
}
