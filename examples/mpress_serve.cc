/**
 * @file
 * mpress-serve — run the planning daemon (src/serve/).
 *
 *   mpress-serve [options]
 *     --port <n>        TCP port on 127.0.0.1; 0 picks an ephemeral
 *                       port [0]
 *     --workers <n>     planning requests in flight at once [2]
 *     --max-queue <n>   admitted requests waiting beyond the ones in
 *                       flight; past this the daemon answers a typed
 *                       "overloaded" error [32]
 *     --allow-stall     enable the test-only "stall" op (holds a
 *                       worker busy; used by tests and the CI smoke
 *                       to fill the queue deterministically)
 *     --max-depth <n>   JSON nesting bound for request lines [32]
 *     --max-bytes <n>   request line size bound in bytes [1048576]
 *
 * On start the daemon prints exactly one line
 *
 *   mpress-serve listening on 127.0.0.1:<port>
 *
 * to stdout (flushed), so scripts can scrape the ephemeral port,
 * then serves until a {"op":"shutdown"} request arrives.  See
 * src/serve/protocol.hh for the wire protocol.
 *
 * Exit status: 0 on clean shutdown, 1 on usage errors or a failed
 * socket setup, 2 on a malformed flag value.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "serve/server.hh"
#include "util/strings.hh"

namespace mu = mpress::util;
namespace sv = mpress::serve;

namespace {

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "mpress-serve: %s (see file header for"
                         " options)\n",
                 msg);
    std::exit(1);
}

[[noreturn]] void
badValue(const char *flag, const std::string &got)
{
    std::fprintf(stderr,
                 "mpress-serve: %s: malformed value '%s' (expected a"
                 " number in range)\n",
                 flag, got.c_str());
    std::exit(2);
}

int
parseIntFlag(const char *flag, const std::string &text)
{
    int value = 0;
    if (!mu::parseInt(text, &value))
        badValue(flag, text);
    return value;
}

} // namespace

int
main(int argc, char **argv)
{
    sv::ServerConfig cfg;
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                usage(flag);
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--port"))
            cfg.port = parseIntFlag("--port", need("--port"));
        else if (!std::strcmp(argv[i], "--workers"))
            cfg.workers =
                parseIntFlag("--workers", need("--workers"));
        else if (!std::strcmp(argv[i], "--max-queue"))
            cfg.maxQueue =
                parseIntFlag("--max-queue", need("--max-queue"));
        else if (!std::strcmp(argv[i], "--allow-stall"))
            cfg.allowStall = true;
        else if (!std::strcmp(argv[i], "--max-depth"))
            cfg.requestLimits.maxDepth =
                parseIntFlag("--max-depth", need("--max-depth"));
        else if (!std::strcmp(argv[i], "--max-bytes"))
            cfg.requestLimits.maxBytes = static_cast<std::size_t>(
                parseIntFlag("--max-bytes", need("--max-bytes")));
        else
            usage("unknown option");
    }
    if (cfg.port < 0 || cfg.port > 65535)
        usage("--port must be in [0, 65535]");
    if (cfg.workers < 1)
        usage("--workers must be >= 1");
    if (cfg.maxQueue < 0)
        usage("--max-queue must be >= 0");

    sv::Server server(cfg);
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "mpress-serve: %s\n", error.c_str());
        return 1;
    }
    // One scrapeable line, flushed before any request work: scripts
    // (tools/check.sh, the load driver) block on it to learn the
    // ephemeral port.
    std::printf("mpress-serve listening on 127.0.0.1:%d\n",
                server.port());
    std::fflush(stdout);
    server.wait();
    return 0;
}
