/**
 * @file
 * Trace export: run a compacted training window with timeline and
 * metrics recording, then write a Chrome-trace JSON (load it in
 * chrome://tracing or ui.perfetto.dev) showing forward/backward/
 * recompute spans per GPU with memory/metric counter tracks, plus
 * the observability bundle as JSON and the per-GPU memory curves as
 * CSV.
 *
 * Run: ./build/examples/trace_export [output.json]
 */

#include <cstdio>
#include <fstream>

#include "api/session.hh"
#include "obs/export.hh"
#include "util/strings.hh"

namespace api = mpress::api;
namespace hw = mpress::hw;
namespace mm = mpress::model;
namespace obs = mpress::obs;

int
main(int argc, char **argv)
{
    const char *json_path = argc > 1 ? argv[1] : "mpress_trace.json";

    api::SessionConfig cfg;
    cfg.model = mm::presetByName("bert-0.64b");
    cfg.microbatch = 12;
    cfg.system = mpress::pipeline::SystemKind::PipeDream;
    cfg.numStages = 8;
    cfg.microbatchesPerMinibatch = 1;
    cfg.minibatches = 8;
    cfg.strategy = api::Strategy::MPressFull;
    cfg.executor.recordTimeline = true;
    cfg.executor.recordMetrics = true;

    auto result = api::runSession(hw::Topology::dgx1V100(), cfg);
    if (result.oom) {
        std::printf("job OOMed; nothing to trace\n");
        return 1;
    }
    const auto &bundle = result.report.observability;

    std::ofstream json(json_path);
    result.report.trace.exportChromeTrace(json);
    std::printf("wrote %zu spans and %zu counter events to %s"
                " (open in chrome://tracing)\n",
                result.report.trace.size(),
                result.report.trace.counters().size(), json_path);

    std::string metrics_path =
        std::string(json_path) + ".metrics.json";
    std::ofstream metrics(metrics_path);
    obs::exportJson(metrics, bundle);
    metrics << "\n";
    std::printf("wrote %zu metric series to %s\n",
                bundle.metrics.series().size(), metrics_path.c_str());

    std::string csv_path = std::string(json_path) + ".mem.csv";
    std::ofstream csv(csv_path);
    obs::exportMemoryCsv(csv, bundle);
    std::printf("wrote memory curves for %zu GPUs to %s\n",
                bundle.memory.gpus().size(), csv_path.c_str());
    std::printf("throughput: %.1f samples/s (%.1f TFLOPS)\n",
                result.samplesPerSec, result.tflops);
    return 0;
}
