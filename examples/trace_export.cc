/**
 * @file
 * Trace export: run a compacted training window with timeline
 * recording and write a Chrome-trace JSON (load it in
 * chrome://tracing or ui.perfetto.dev) showing forward/backward/
 * recompute spans per GPU, plus a CSV of the per-GPU memory curves.
 *
 * Run: ./build/examples/trace_export [output.json]
 */

#include <cstdio>
#include <fstream>

#include "api/session.hh"
#include "util/strings.hh"

namespace api = mpress::api;
namespace hw = mpress::hw;
namespace mm = mpress::model;
namespace mu = mpress::util;

int
main(int argc, char **argv)
{
    const char *json_path = argc > 1 ? argv[1] : "mpress_trace.json";

    api::SessionConfig cfg;
    cfg.model = mm::presetByName("bert-0.64b");
    cfg.microbatch = 12;
    cfg.system = mpress::pipeline::SystemKind::PipeDream;
    cfg.numStages = 8;
    cfg.microbatchesPerMinibatch = 1;
    cfg.minibatches = 8;
    cfg.strategy = api::Strategy::MPressFull;
    cfg.executor.recordTimeline = true;

    auto result = api::runSession(hw::Topology::dgx1V100(), cfg);
    if (result.oom) {
        std::printf("job OOMed; nothing to trace\n");
        return 1;
    }

    std::ofstream json(json_path);
    result.report.trace.exportChromeTrace(json);
    std::printf("wrote %zu spans to %s (open in chrome://tracing)\n",
                result.report.trace.size(), json_path);

    std::string csv_path = std::string(json_path) + ".mem.csv";
    std::ofstream csv(csv_path);
    csv << "time_ms,gpu,used_gb\n";
    for (const auto &s : result.report.memTimeline) {
        csv << mu::strformat("%.3f,%d,%.3f\n", mu::toMs(s.time),
                             s.gpu, mu::toGB(s.used));
    }
    std::printf("wrote %zu memory samples to %s\n",
                result.report.memTimeline.size(), csv_path.c_str());
    std::printf("throughput: %.1f samples/s (%.1f TFLOPS)\n",
                result.samplesPerSec, result.tflops);
    return 0;
}
