/**
 * @file
 * OOM rescue: take a model that crashes the stock inter-operator
 * system (Bert-1.67B on PipeDream/DGX-1) and compare every memory
 * strategy's ability to rescue it — the single-model slice of the
 * paper's Figure 7.
 *
 * Run: ./build/examples/oom_rescue [model-preset]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "api/session.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace api = mpress::api;
namespace hw = mpress::hw;
namespace mm = mpress::model;
namespace mu = mpress::util;

int
main(int argc, char **argv)
{
    std::string preset = argc > 1 ? argv[1] : "bert-1.67b";
    hw::Topology server = hw::Topology::dgx1V100();

    const api::Strategy strategies[] = {
        api::Strategy::None,       api::Strategy::GpuCpuSwap,
        api::Strategy::Recompute,  api::Strategy::D2dOnly,
        api::Strategy::MPressFull,
    };

    std::printf("rescuing %s on %s (PipeDream, microbatch 12)\n\n",
                preset.c_str(), server.name().c_str());

    mu::TextTable table({"strategy", "outcome", "samples/s", "TFLOPS",
                         "max GPU peak", "swap-in stall", "recompute"});
    for (api::Strategy strat : strategies) {
        api::SessionConfig cfg;
        cfg.model = mm::presetByName(preset);
        cfg.microbatch = 12;
        cfg.system = mpress::pipeline::SystemKind::PipeDream;
        cfg.numStages = server.numGpus();
        cfg.microbatchesPerMinibatch = 8;
        cfg.minibatches = 2;
        cfg.strategy = strat;

        auto result = api::runSession(server, cfg);
        if (result.oom) {
            table.addRow({api::strategyName(strat), "OOM", "-", "-",
                          mu::formatBytes(result.maxGpuPeak), "-",
                          "-"});
            continue;
        }
        mu::Tick stall = 0, recompute = 0;
        for (const auto &o : result.report.overheads) {
            stall += o.swapInStall;
            recompute += o.recomputeTime;
        }
        table.addRow({api::strategyName(strat), "ok",
                      mu::strformat("%.1f", result.samplesPerSec),
                      mu::strformat("%.1f", result.tflops),
                      mu::formatBytes(result.maxGpuPeak),
                      mu::formatTime(stall),
                      mu::formatTime(recompute)});
    }
    table.print(std::cout);

    std::printf("\nRed-cross equivalents (OOM rows) match the"
                " paper's Figure 7 shape: the stock system and"
                " narrow strategies fail first; MPress combines all"
                " three techniques and stays fastest.\n");
    return 0;
}
