/**
 * @file
 * MPress vs the ZeRO family on billion-scale GPT (the Figure-8
 * comparison, single model size): DAPPLE+MPress against
 * ZeRO-Offload and ZeRO-Infinity on both server generations.
 *
 * Run: ./build/examples/zero_comparison [model-preset]
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "api/session.hh"
#include "util/strings.hh"
#include "util/table.hh"

namespace api = mpress::api;
namespace hw = mpress::hw;
namespace mm = mpress::model;
namespace mu = mpress::util;

namespace {

void
compareOn(hw::Topology server, const std::string &preset)
{
    std::printf("=== %s, %s (microbatch 2) ===\n",
                server.name().c_str(), preset.c_str());

    const api::Strategy strategies[] = {
        api::Strategy::None,        api::Strategy::Recompute,
        api::Strategy::ZeroOffload, api::Strategy::ZeroInfinity,
        api::Strategy::MPressFull,
    };

    mu::TextTable table({"system", "outcome", "TFLOPS", "samples/s"});
    double mpress_tflops = 0, best_zero = 0;
    for (api::Strategy strat : strategies) {
        api::SessionConfig cfg;
        cfg.model = mm::presetByName(preset);
        cfg.microbatch = 2;
        cfg.system = mpress::pipeline::SystemKind::Dapple;
        cfg.numStages = server.numGpus();
        // Large minibatches: 32 microbatches amortize the pipeline
        // fill/drain bubble, and the ZeRO runs accumulate gradients
        // over the same 32 microbatches so optimizer-step costs are
        // amortized identically.
        cfg.microbatchesPerMinibatch = 32;
        cfg.minibatches = 2;
        cfg.zero.gradAccumSteps = 32;
        cfg.strategy = strat;
        auto result = api::runSession(server, cfg);
        if (result.oom) {
            table.addRow({api::strategyName(strat), "OOM", "-", "-"});
            continue;
        }
        table.addRow({api::strategyName(strat), "ok",
                      mu::strformat("%.1f", result.tflops),
                      mu::strformat("%.2f", result.samplesPerSec)});
        if (strat == api::Strategy::MPressFull)
            mpress_tflops = result.tflops;
        if (strat == api::Strategy::ZeroOffload ||
            strat == api::Strategy::ZeroInfinity)
            best_zero = std::max(best_zero, result.tflops);
    }
    table.print(std::cout);
    if (mpress_tflops > 0 && best_zero > 0) {
        std::printf("MPress speedup over best ZeRO variant: %.2fx\n",
                    mpress_tflops / best_zero);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string preset = argc > 1 ? argv[1] : "gpt-10.3b";

    // The paper's ZeRO experiments ran on servers provisioned with
    // NVMe swap space (Sec. IV-C); add it to the DGX-1 profile.
    auto dgx1 = hw::Topology::dgx1V100();
    dgx1.setNvmeCapacity(2000 * mu::kGB);
    // The ZeRO server used an NVMe array with high aggregate I/O
    // bandwidth (ZeRO-Infinity's design point).
    auto fast_nvme = hw::LinkSpec::nvme();
    fast_nvme.peak = mpress::util::Bandwidth::fromGBps(25.0);
    dgx1.setNvmeSpec(fast_nvme);

    compareOn(dgx1, preset);
    compareOn(hw::Topology::dgx2A100(), preset);
    return 0;
}
