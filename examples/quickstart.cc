/**
 * @file
 * Quickstart: train a Bert model that does not fit a DGX-1's GPUs
 * with MPress's full planner, and inspect what the planner decided.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "api/session.hh"
#include "util/table.hh"
#include "util/strings.hh"

#include <iostream>

namespace api = mpress::api;
namespace cp = mpress::compaction;
namespace hw = mpress::hw;
namespace mm = mpress::model;
namespace mu = mpress::util;

int
main()
{
    // 1. Pick a server and a model.  Bert-0.64B at microbatch 12
    //    overflows a 32 GB V100 on the early pipeline stages.
    hw::Topology server = hw::Topology::dgx1V100();

    api::SessionConfig cfg;
    cfg.model = mm::presetByName("bert-0.64b");
    cfg.microbatch = 12;
    cfg.system = mpress::pipeline::SystemKind::PipeDream;
    cfg.numStages = server.numGpus();
    cfg.microbatchesPerMinibatch = 8;
    cfg.minibatches = 2;
    cfg.strategy = api::Strategy::MPressFull;

    // 2. Run the session: profile -> device mapping -> plan ->
    //    simulated training.
    api::MPressSession session(server, cfg);
    api::SessionResult result = session.run();

    std::printf("=== %s on %s ===\n", result.name.c_str(),
                server.name().c_str());
    if (result.oom) {
        std::printf("training failed: out of GPU memory\n");
        return 1;
    }

    // 3. Throughput.
    std::printf("throughput : %.1f samples/s (%.1f TFLOPS)\n",
                result.samplesPerSec, result.tflops);
    std::printf("max GPU peak: %s of %s per GPU\n",
                mu::formatBytes(result.maxGpuPeak).c_str(),
                mu::formatBytes(server.gpu().memCapacity).c_str());

    // 4. What the planner decided.
    const auto &plan = result.plan;
    std::printf("\nplan: %d recompute, %d gpu-cpu-swap, %d d2d-swap"
                " activation classes\n",
                plan.countKind(cp::Kind::Recompute),
                plan.countKind(cp::Kind::GpuCpuSwap),
                plan.countKind(cp::Kind::D2dSwap));
    if (!plan.stageToGpu.empty()) {
        std::printf("stage -> GPU mapping:");
        for (std::size_t s = 0; s < plan.stageToGpu.size(); ++s)
            std::printf(" %zu->%d", s, plan.stageToGpu[s]);
        std::printf("\n");
    }
    for (const auto &[exporter, grants] : plan.spareGrants) {
        std::printf("GPU%d borrows:", exporter);
        for (const auto &g : grants) {
            std::printf(" %s from GPU%d",
                        mu::formatBytes(g.budget).c_str(),
                        g.importerGpu);
        }
        std::printf("\n");
    }

    // 5. Per-GPU memory picture.
    mu::TextTable table({"gpu", "peak", "activations", "params",
                         "optimizer"});
    for (const auto &g : result.report.gpus) {
        table.addRow({mu::strformat("%d", g.gpu),
                      mu::formatBytes(g.peak),
                      mu::formatBytes(g.peakActivations),
                      mu::formatBytes(g.peakParams),
                      mu::formatBytes(g.peakOptState)});
    }
    std::printf("\n");
    table.print(std::cout);

    // 6. Savings attribution (what made it fit).
    const auto &sv = result.report.savings;
    std::printf("\nmemory saved per iteration: recompute %s,"
                " gpu-cpu swap %s, d2d swap %s\n",
                mu::formatBytes(sv.recompute).c_str(),
                mu::formatBytes(sv.gpuCpuSwap).c_str(),
                mu::formatBytes(sv.d2dSwap).c_str());
    return 0;
}
